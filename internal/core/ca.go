package core

import (
	"math"

	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
)

// DefaultLambda is the constant-block threshold coefficient the paper's
// Table IV identifies as optimal (λ = 0.15 of the mean value).
const DefaultLambda = 0.15

// DefaultBlockSide matches the paper's 4×4×4 CA blocks.
const DefaultBlockSide = 4

// caChunkBlocks is the number of CA blocks one parallel scan task covers.
// Per-block constant/non-constant verdicts are independent booleans, so the
// aggregated count is exactly the serial result at any worker count.
const caChunkBlocks = 256

// NonConstantRatio implements the Compressibility Adjustment scan (§IV-E2):
// the field is split into blockSide^d blocks; a block whose value range is
// below λ·|mean value of the dataset| is "constant" (its compressed size is
// taken as ~0); R is the fraction of non-constant blocks. The adjusted
// compression ratio fed to the model is ACR = TCR · R (Formula 4).
func NonConstantRatio(f *grid.Field, blockSide int, lambda float64) float64 {
	return NonConstantRatioParallel(f, blockSide, lambda, 1)
}

// NonConstantRatioParallel is NonConstantRatio with the block scan fanned out
// over a bounded worker pool. workers <= 1 scans serially on the calling
// goroutine. The result is exactly the serial value at every worker count:
// the threshold comes from a serial mean pass, and each block contributes an
// order-independent boolean to the count.
func NonConstantRatioParallel(f *grid.Field, blockSide int, lambda float64, workers int) float64 {
	defer obs.Span("ca/scan")()
	if blockSide <= 0 {
		blockSide = DefaultBlockSide
	}
	if lambda <= 0 {
		lambda = DefaultLambda
	}
	threshold := lambda * math.Abs(f.Mean())

	nd := f.NDims()
	nblocks := make([]int, nd)
	total := 1
	for i, d := range f.Dims {
		nblocks[i] = (d + blockSide - 1) / blockSide
		total *= nblocks[i]
	}
	if total == 0 {
		return 1
	}
	strides := f.Strides()

	nc := (total + caChunkBlocks - 1) / caChunkBlocks
	counts := make([]int, nc)
	pool.Run(workers, nc, func(ci int) {
		lo := ci * caChunkBlocks
		hi := lo + caChunkBlocks
		if hi > total {
			hi = total
		}
		counts[ci] = countNonConstantBlocks(f, blockSide, nblocks, strides, lo, hi, threshold, false)
	})
	nonConst := 0
	for _, c := range counts {
		nonConst += c
	}

	r := float64(nonConst) / float64(total)
	if r == 0 {
		// A fully constant dataset still compresses to *something*; keep the
		// adjustment away from zero so ACR stays meaningful.
		r = 1 / float64(total)
	}
	return r
}

// countNonConstantBlocks scans blocks [lo, hi) in the row-major linear block
// order of grid.VisitBlocks and counts those whose value range meets the
// threshold. It reads samples in place — no gather buffer — so concurrent
// tasks share nothing but the read-only field. Full (unclipped) blocks in
// dims 1–3 take the specialized nested-loop kernels in ca_fast.go; clipped
// edge blocks and ≥ 4-d fields use the coordinate odometer, which doubles as
// the property-test oracle when forceGeneric is set.
func countNonConstantBlocks(f *grid.Field, side int, nblocks, strides []int, lo, hi int, threshold float64, forceGeneric bool) int {
	nd := len(nblocks)
	bcoord := make([]int, nd)
	origin := make([]int, nd)
	shape := make([]int, nd)
	coord := make([]int, nd)
	count := 0
	var nfast, nedge int64
	for bi := lo; bi < hi; bi++ {
		// Decompose the linear block index (row-major, last dim fastest).
		rem := bi
		for d := nd - 1; d >= 0; d-- {
			bcoord[d] = rem % nblocks[d]
			rem /= nblocks[d]
		}
		base := 0
		full := true
		for d := 0; d < nd; d++ {
			origin[d] = bcoord[d] * side
			shape[d] = side
			if origin[d]+shape[d] > f.Dims[d] {
				shape[d] = f.Dims[d] - origin[d]
				full = false
			}
			base += origin[d] * strides[d]
			coord[d] = 0
		}
		var mn, mx float32
		if full && !forceGeneric && nd <= 3 {
			nfast++
			switch nd {
			case 1:
				mn, mx = blockRange1D(f.Data, base, side, strides[0])
			case 2:
				mn, mx = blockRange2D(f.Data, base, side, strides[0], strides[1])
			default:
				mn, mx = blockRange3D(f.Data, base, side, strides[0], strides[1], strides[2])
			}
		} else {
			nedge++
			mn, mx = blockRangeOdometer(f.Data, base, shape, strides, coord)
		}
		if float64(mx-mn) >= threshold {
			count++
		}
	}
	obs.Add("ca/blocks_fast", nfast)
	obs.Add("ca/blocks_edge", nedge)
	return count
}

// blockRangeOdometer computes the value range of a clipped block via a
// coordinate odometer. coord is caller scratch, already zeroed.
func blockRangeOdometer(data []float32, base int, shape, strides, coord []int) (mn, mx float32) {
	nd := len(shape)
	mn = data[base]
	mx = mn
	for {
		lin := base
		for d := 0; d < nd; d++ {
			lin += coord[d] * strides[d]
		}
		v := data[lin]
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		d := nd - 1
		for d >= 0 {
			coord[d]++
			if coord[d] < shape[d] {
				break
			}
			coord[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	return mn, mx
}

// AdjustRatio applies Formula (4): ACR = TCR · R.
func AdjustRatio(tcr, r float64) float64 { return tcr * r }
