package core

import (
	"math"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// DefaultLambda is the constant-block threshold coefficient the paper's
// Table IV identifies as optimal (λ = 0.15 of the mean value).
const DefaultLambda = 0.15

// DefaultBlockSide matches the paper's 4×4×4 CA blocks.
const DefaultBlockSide = 4

// NonConstantRatio implements the Compressibility Adjustment scan (§IV-E2):
// the field is split into blockSide^d blocks; a block whose value range is
// below λ·|mean value of the dataset| is "constant" (its compressed size is
// taken as ~0); R is the fraction of non-constant blocks. The adjusted
// compression ratio fed to the model is ACR = TCR · R (Formula 4).
func NonConstantRatio(f *grid.Field, blockSide int, lambda float64) float64 {
	if blockSide <= 0 {
		blockSide = DefaultBlockSide
	}
	if lambda <= 0 {
		lambda = DefaultLambda
	}
	threshold := lambda * math.Abs(f.Mean())
	total, nonConst := 0, 0
	grid.VisitBlocks(f, blockSide, func(_ grid.Block, vals []float32) {
		total++
		mn, mx := vals[0], vals[0]
		for _, v := range vals[1:] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if float64(mx-mn) >= threshold {
			nonConst++
		}
	})
	if total == 0 {
		return 1
	}
	r := float64(nonConst) / float64(total)
	if r == 0 {
		// A fully constant dataset still compresses to *something*; keep the
		// adjustment away from zero so ACR stays meaningful.
		r = 1 / float64(total)
	}
	return r
}

// AdjustRatio applies Formula (4): ACR = TCR · R.
func AdjustRatio(tcr, r float64) float64 { return tcr * r }
