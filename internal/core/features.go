// Package core implements FXRZ, the paper's contribution: a feature-driven,
// compressor-agnostic, fixed-ratio lossy compression framework. Given a
// dataset and a target compression ratio, FXRZ estimates the error-bound (or
// precision) setting that reaches the target without ever running the
// compressor at inference time.
//
// The pieces map to the paper's Fig 1 architecture:
//
//	features.go — §IV-C feature extraction (with §IV-E1 stride sampling)
//	curve.go    — §IV-B stationary points + interpolation-based augmentation
//	ca.go       — §IV-E2 Compressibility Adjustment (constant-block ratio)
//	train.go    — the training engine (ML model over augmented samples)
//	infer.go    — the inference engine (features + ACR → error configuration)
package core

import (
	"math"

	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
)

// Features holds the eight candidate data features of §IV-C. The five the
// paper adopts (Table II) come first; the three gradient features are kept
// for the feature-correlation experiment but excluded from the model input.
type Features struct {
	ValueRange   float64 // max - min
	MeanValue    float64 // arithmetic mean
	MND          float64 // mean |v - mean(neighbors)|
	MLD          float64 // mean |v - lorenzo(v)|
	MSD          float64 // mean |v - spline(v)| (equation 3 stencil)
	MeanGradient float64 // mean |v - previous v| along each dimension
	MinGradient  float64
	MaxGradient  float64
}

// Vector returns the five adopted features as the model input prefix, in a
// fixed order.
func (ft Features) Vector() []float64 {
	return []float64{ft.ValueRange, ft.MeanValue, ft.MND, ft.MLD, ft.MSD}
}

// FullVector returns all eight features (Table II order).
func (ft Features) FullVector() []float64 {
	return []float64{ft.ValueRange, ft.MeanValue, ft.MND, ft.MLD, ft.MSD,
		ft.MeanGradient, ft.MinGradient, ft.MaxGradient}
}

// FeatureNames lists the names in Vector()/FullVector() order.
var FeatureNames = []string{"ValueRange", "MeanValue", "MND", "MLD", "MSD",
	"MeanGradient", "MinGradient", "MaxGradient"}

// reductionChunk is the fixed number of samples per partial-reduction chunk
// of the parallel feature extraction. Chunk boundaries depend only on the
// field size — never on the worker count — and partial sums are combined in
// chunk-index order, so every feature is bit-identical at any Parallelism
// setting. A field that fits in one chunk reduces in exactly the original
// serial accumulation order.
const reductionChunk = 32 << 10

func reductionChunks(n int) int { return (n + reductionChunk - 1) / reductionChunk }

func chunkBounds(ci, n int) (lo, hi int) {
	lo = ci * reductionChunk
	hi = lo + reductionChunk
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ExtractFeatures computes the features on a uniform stride-K sample of the
// field (§IV-E1): the field is subsampled to a coarse grid (stride 4 keeps
// ~1.5% of a 3D field) and all neighborhood features are evaluated on that
// grid. stride <= 1 uses every point.
func ExtractFeatures(f *grid.Field, stride int) Features {
	return ExtractFeaturesParallel(f, stride, 1)
}

// ExtractFeaturesParallel is ExtractFeatures with the reduction fanned out
// over a bounded worker pool. workers <= 1 runs serially on the calling
// goroutine; the result is bit-identical at every worker count (the field is
// reduced in fixed-size chunks whose partials combine in chunk order).
func ExtractFeaturesParallel(f *grid.Field, stride, workers int) Features {
	defer obs.Span("features/extract")()
	// The stride is applied as-is even when it degenerates small grids: a
	// framework must extract features identically for every field it sees
	// (training and inference), and a per-field adaptive stride would make
	// smoothness features incomparable between a small training mesh and a
	// larger production mesh.
	s := f
	if stride > 1 {
		s = grid.Subsample(f, stride)
	}
	n := s.Size()
	var ft Features
	if n == 0 {
		return ft
	}
	nc := reductionChunks(n)
	parts := make([]featurePartial, nc)
	pool.Run(workers, nc, func(ci int) {
		lo, hi := chunkBounds(ci, n)
		parts[ci] = featureRange(s, lo, hi)
	})

	// Ordered combine: float sums in chunk-index order, min/max and counts
	// exactly.
	agg := parts[0]
	for _, p := range parts[1:] {
		agg.sum += p.sum
		if p.mn < agg.mn {
			agg.mn = p.mn
		}
		if p.mx > agg.mx {
			agg.mx = p.mx
		}
		agg.mnd += p.mnd
		agg.mld += p.mld
		agg.mldCount += p.mldCount
		agg.msd += p.msd
		agg.msdCount += p.msdCount
		agg.grad += p.grad
		agg.gradCount += p.gradCount
		if p.gmin < agg.gmin {
			agg.gmin = p.gmin
		}
		if p.gmax > agg.gmax {
			agg.gmax = p.gmax
		}
	}

	ft.ValueRange = float64(agg.mx) - float64(agg.mn)
	ft.MeanValue = agg.sum / float64(n)
	ft.MND = agg.mnd / float64(n)
	if agg.mldCount > 0 {
		ft.MLD = agg.mld / float64(agg.mldCount)
	}
	if agg.msdCount > 0 {
		ft.MSD = agg.msd / float64(agg.msdCount)
	}
	if agg.gradCount > 0 {
		ft.MeanGradient = agg.grad / float64(agg.gradCount)
		ft.MinGradient = agg.gmin
		ft.MaxGradient = agg.gmax
	}
	return ft
}

// featurePartial accumulates one chunk's contribution to every feature.
type featurePartial struct {
	sum        float64 // Σ v                 → MeanValue
	mn, mx     float32 // min/max             → ValueRange
	mnd        float64 // Σ |v - mean(nbrs)|  → MND (divided by field size)
	mld        float64 // Σ |v - lorenzo|     → MLD over interior points
	mldCount   int
	msd        float64 // Σ |v - spline|      → MSD over stencil-fitting points
	msdCount   int
	grad       float64 // Σ |v - prev v|      → gradient features
	gradCount  int
	gmin, gmax float64
}

// featureRange reduces samples [lo, hi) of f in a single fused pass. Each
// accumulator receives its terms in ascending-index order, exactly as the
// per-feature serial loops did, so one-chunk fields reproduce the historic
// serial values bit for bit.
func featureRange(f *grid.Field, lo, hi int) featurePartial {
	dims := f.Dims
	strides := f.Strides()
	nd := len(dims)

	// Lorenzo stencil: offsets and inclusion–exclusion signs for each
	// non-empty dimension subset (equations (1)–(2)).
	nmask := 1 << nd
	offs := make([]int, nmask)
	signs := make([]float64, nmask)
	for m := 1; m < nmask; m++ {
		bitcnt := 0
		for d := 0; d < nd; d++ {
			if m&(1<<d) != 0 {
				offs[m] += strides[d]
				bitcnt++
			}
		}
		if bitcnt%2 == 1 {
			signs[m] = 1
		} else {
			signs[m] = -1
		}
	}

	p := featurePartial{mn: f.Data[lo], mx: f.Data[lo], gmin: math.Inf(1), gmax: math.Inf(-1)}
	coord := f.Coord(lo)
	for idx := lo; idx < hi; idx++ {
		fv := f.Data[idx]
		v := float64(fv)
		p.sum += v
		if fv < p.mn {
			p.mn = fv
		}
		if fv > p.mx {
			p.mx = fv
		}

		// MND: mean absolute difference to the ±1 axis neighbors that exist.
		var nsum float64
		var ncnt int
		interior := true
		for d := 0; d < nd; d++ {
			if coord[d] > 0 {
				nsum += float64(f.Data[idx-strides[d]])
				ncnt++
			} else {
				interior = false
			}
			if coord[d]+1 < dims[d] {
				nsum += float64(f.Data[idx+strides[d]])
				ncnt++
			}
		}
		if ncnt > 0 {
			p.mnd += math.Abs(v - nsum/float64(ncnt))
		}

		// MLD: inclusion–exclusion Lorenzo prediction over interior points.
		if interior {
			var pred float64
			for m := 1; m < nmask; m++ {
				pred += signs[m] * float64(f.Data[idx-offs[m]])
			}
			p.mld += math.Abs(v - pred)
			p.mldCount++
		}

		// MSD: cubic spline-interpolation stencil of equation (3),
		// spline_i = -1/16·d[i-3] + 9/16·d[i-1] + 9/16·d[i+1] - 1/16·d[i+3],
		// averaged over the dimensions whose stencil fits.
		var ssum float64
		var fit int
		for d := 0; d < nd; d++ {
			if coord[d] >= 3 && coord[d]+3 < dims[d] {
				st := strides[d]
				sp := -1.0/16*float64(f.Data[idx-3*st]) + 9.0/16*float64(f.Data[idx-st]) +
					9.0/16*float64(f.Data[idx+st]) - 1.0/16*float64(f.Data[idx+3*st])
				ssum += sp
				fit++
			}
		}
		if fit > 0 {
			p.msd += math.Abs(v - ssum/float64(fit))
			p.msdCount++
		}

		// Gradients: |v - previous v| along every dimension.
		for d := 0; d < nd; d++ {
			if coord[d] > 0 {
				g := math.Abs(v - float64(f.Data[idx-strides[d]]))
				p.grad += g
				p.gradCount++
				if g < p.gmin {
					p.gmin = g
				}
				if g > p.gmax {
					p.gmax = g
				}
			}
		}

		advance(coord, dims)
	}
	return p
}

// advance steps a row-major coordinate odometer.
func advance(coord, dims []int) {
	for d := len(dims) - 1; d >= 0; d-- {
		coord[d]++
		if coord[d] < dims[d] {
			return
		}
		coord[d] = 0
	}
}
