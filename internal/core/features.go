// Package core implements FXRZ, the paper's contribution: a feature-driven,
// compressor-agnostic, fixed-ratio lossy compression framework. Given a
// dataset and a target compression ratio, FXRZ estimates the error-bound (or
// precision) setting that reaches the target without ever running the
// compressor at inference time.
//
// The pieces map to the paper's Fig 1 architecture:
//
//	features.go — §IV-C feature extraction (with §IV-E1 stride sampling)
//	curve.go    — §IV-B stationary points + interpolation-based augmentation
//	ca.go       — §IV-E2 Compressibility Adjustment (constant-block ratio)
//	train.go    — the training engine (ML model over augmented samples)
//	infer.go    — the inference engine (features + ACR → error configuration)
package core

import (
	"math"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// Features holds the eight candidate data features of §IV-C. The five the
// paper adopts (Table II) come first; the three gradient features are kept
// for the feature-correlation experiment but excluded from the model input.
type Features struct {
	ValueRange   float64 // max - min
	MeanValue    float64 // arithmetic mean
	MND          float64 // mean |v - mean(neighbors)|
	MLD          float64 // mean |v - lorenzo(v)|
	MSD          float64 // mean |v - spline(v)| (equation 3 stencil)
	MeanGradient float64 // mean |v - previous v| along each dimension
	MinGradient  float64
	MaxGradient  float64
}

// Vector returns the five adopted features as the model input prefix, in a
// fixed order.
func (ft Features) Vector() []float64 {
	return []float64{ft.ValueRange, ft.MeanValue, ft.MND, ft.MLD, ft.MSD}
}

// FullVector returns all eight features (Table II order).
func (ft Features) FullVector() []float64 {
	return []float64{ft.ValueRange, ft.MeanValue, ft.MND, ft.MLD, ft.MSD,
		ft.MeanGradient, ft.MinGradient, ft.MaxGradient}
}

// FeatureNames lists the names in Vector()/FullVector() order.
var FeatureNames = []string{"ValueRange", "MeanValue", "MND", "MLD", "MSD",
	"MeanGradient", "MinGradient", "MaxGradient"}

// ExtractFeatures computes the features on a uniform stride-K sample of the
// field (§IV-E1): the field is subsampled to a coarse grid (stride 4 keeps
// ~1.5% of a 3D field) and all neighborhood features are evaluated on that
// grid. stride <= 1 uses every point.
func ExtractFeatures(f *grid.Field, stride int) Features {
	// The stride is applied as-is even when it degenerates small grids: a
	// framework must extract features identically for every field it sees
	// (training and inference), and a per-field adaptive stride would make
	// smoothness features incomparable between a small training mesh and a
	// larger production mesh.
	s := f
	if stride > 1 {
		s = grid.Subsample(f, stride)
	}
	var ft Features
	mn, mx := s.Range()
	ft.ValueRange = mx - mn
	ft.MeanValue = s.Mean()
	ft.MND = meanNeighborDiff(s)
	ft.MLD = meanLorenzoDiff(s)
	ft.MSD = meanSplineDiff(s)
	ft.MeanGradient, ft.MinGradient, ft.MaxGradient = gradients(s)
	return ft
}

// meanNeighborDiff averages |v - mean(axis neighbors)| over all points; each
// point uses the ±1 neighbors along every dimension that exist.
func meanNeighborDiff(f *grid.Field) float64 {
	dims := f.Dims
	strides := f.Strides()
	nd := len(dims)
	coord := make([]int, nd)
	var total float64
	for idx := range f.Data {
		var sum float64
		var cnt int
		for d := 0; d < nd; d++ {
			if coord[d] > 0 {
				sum += float64(f.Data[idx-strides[d]])
				cnt++
			}
			if coord[d]+1 < dims[d] {
				sum += float64(f.Data[idx+strides[d]])
				cnt++
			}
		}
		if cnt > 0 {
			total += math.Abs(float64(f.Data[idx]) - sum/float64(cnt))
		}
		advance(coord, dims)
	}
	return total / float64(f.Size())
}

// meanLorenzoDiff averages |v - lorenzoPrediction| over interior points,
// using the inclusion–exclusion Lorenzo stencil of equations (1)–(2).
func meanLorenzoDiff(f *grid.Field) float64 {
	dims := f.Dims
	strides := f.Strides()
	nd := len(dims)
	nmask := 1 << nd

	// Precompute offsets and signs for each non-empty dimension subset.
	offs := make([]int, nmask)
	signs := make([]float64, nmask)
	for m := 1; m < nmask; m++ {
		bitcnt := 0
		for d := 0; d < nd; d++ {
			if m&(1<<d) != 0 {
				offs[m] += strides[d]
				bitcnt++
			}
		}
		if bitcnt%2 == 1 {
			signs[m] = 1
		} else {
			signs[m] = -1
		}
	}

	coord := make([]int, nd)
	var total float64
	var count int
	for idx := range f.Data {
		interior := true
		for d := 0; d < nd; d++ {
			if coord[d] == 0 {
				interior = false
				break
			}
		}
		if interior {
			var pred float64
			for m := 1; m < nmask; m++ {
				pred += signs[m] * float64(f.Data[idx-offs[m]])
			}
			total += math.Abs(float64(f.Data[idx]) - pred)
			count++
		}
		advance(coord, dims)
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// meanSplineDiff averages |v - A| where A is the mean over dimensions of the
// cubic spline-interpolation fit of equation (3):
// spline_i = -1/16·d[i-3] + 9/16·d[i-1] + 9/16·d[i+1] - 1/16·d[i+3].
// Dimensions whose stencil does not fit at a point are skipped; points with
// no fitting dimension are skipped.
func meanSplineDiff(f *grid.Field) float64 {
	dims := f.Dims
	strides := f.Strides()
	nd := len(dims)
	coord := make([]int, nd)
	var total float64
	var count int
	for idx := range f.Data {
		var sum float64
		var fit int
		for d := 0; d < nd; d++ {
			if coord[d] >= 3 && coord[d]+3 < dims[d] {
				s := strides[d]
				sp := -1.0/16*float64(f.Data[idx-3*s]) + 9.0/16*float64(f.Data[idx-s]) +
					9.0/16*float64(f.Data[idx+s]) - 1.0/16*float64(f.Data[idx+3*s])
				sum += sp
				fit++
			}
		}
		if fit > 0 {
			total += math.Abs(float64(f.Data[idx]) - sum/float64(fit))
			count++
		}
		advance(coord, dims)
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// gradients returns (mean, min, max) of |v - previous v| over all adjacent
// pairs along every dimension.
func gradients(f *grid.Field) (mean, min, max float64) {
	dims := f.Dims
	strides := f.Strides()
	nd := len(dims)
	coord := make([]int, nd)
	min = math.Inf(1)
	var total float64
	var count int
	for idx := range f.Data {
		for d := 0; d < nd; d++ {
			if coord[d] > 0 {
				g := math.Abs(float64(f.Data[idx]) - float64(f.Data[idx-strides[d]]))
				total += g
				count++
				if g < min {
					min = g
				}
				if g > max {
					max = g
				}
			}
		}
		advance(coord, dims)
	}
	if count == 0 {
		return 0, 0, 0
	}
	return total / float64(count), min, max
}

// advance steps a row-major coordinate odometer.
func advance(coord, dims []int) {
	for d := len(dims) - 1; d >= 0; d-- {
		coord[d]++
		if coord[d] < dims[d] {
			return
		}
		coord[d] = 0
	}
}
