package core

import (
	"fmt"
	"time"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/ml"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
)

// ModelKind selects the regressor family (§IV-D compares all three; the
// paper adopts the random forest).
type ModelKind string

// The three model families of Table III.
const (
	ModelRFR      ModelKind = "rfr"
	ModelAdaBoost ModelKind = "adaboost"
	ModelSVR      ModelKind = "svr"
)

// Config controls FXRZ training and inference.
type Config struct {
	// Stride is the uniform sampling stride for feature extraction
	// (§IV-E1); the paper's default 4 keeps ~1.5% of a 3D field. Values
	// <= 1 disable sampling.
	Stride int
	// UseCA toggles the Compressibility Adjustment (§IV-E2, default on via
	// DefaultConfig).
	UseCA bool
	// Lambda is the CA threshold coefficient (default 0.15, Table IV).
	Lambda float64
	// BlockSide is the CA block edge (default 4).
	BlockSide int
	// StationaryPoints is the number of compressor runs per training field
	// (the paper averages 25).
	StationaryPoints int
	// AugmentPerField is the number of interpolated samples drawn per
	// training field's curve.
	AugmentPerField int
	// RelKnobMin/RelKnobMax bound the error-bound sweep relative to each
	// field's value range (ignored for precision axes, which sweep their
	// native integer domain).
	RelKnobMin, RelKnobMax float64
	// Model picks the regressor family (default RFR).
	Model ModelKind
	// Trees is the forest size for ModelRFR (default 100).
	Trees int
	// Seed drives all stochastic components.
	Seed int64
	// Parallelism bounds the worker pool used for stationary sweeps, feature
	// extraction and the CA block scan. 0 (the zero value) means all cores
	// (runtime.GOMAXPROCS(0)); 1 runs everything serially on the calling
	// goroutine. Training results are bit-identical at every setting: work is
	// partitioned into fixed, worker-count-independent units and assembled in
	// index order.
	Parallelism int
}

// DefaultConfig returns the paper's configuration: stride-4 sampling, CA on
// with λ=0.15 and 4³ blocks, 25 stationary points, RFR with 100 trees.
func DefaultConfig() Config {
	return Config{
		Stride:           4,
		UseCA:            true,
		Lambda:           DefaultLambda,
		BlockSide:        DefaultBlockSide,
		StationaryPoints: 25,
		AugmentPerField:  150,
		RelKnobMin:       1e-6,
		RelKnobMax:       0.25,
		Model:            ModelRFR,
		Trees:            100,
		Seed:             1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Stride == 0 {
		c.Stride = d.Stride
	}
	if c.Lambda == 0 {
		c.Lambda = d.Lambda
	}
	if c.BlockSide == 0 {
		c.BlockSide = d.BlockSide
	}
	if c.StationaryPoints == 0 {
		c.StationaryPoints = d.StationaryPoints
	}
	if c.AugmentPerField == 0 {
		c.AugmentPerField = d.AugmentPerField
	}
	if c.RelKnobMin == 0 {
		c.RelKnobMin = d.RelKnobMin
	}
	if c.RelKnobMax == 0 {
		c.RelKnobMax = d.RelKnobMax
	}
	if c.Model == "" {
		c.Model = d.Model
	}
	if c.Trees == 0 {
		c.Trees = d.Trees
	}
	return c
}

// TrainStats is the Table VI breakdown of where training time goes.
type TrainStats struct {
	// StationarySweep is the time spent running the compressor to collect
	// stationary points — the dominant cost.
	StationarySweep time.Duration
	// Augmentation is the (tiny) interpolation time.
	Augmentation time.Duration
	// ModelFit is the regressor training time.
	ModelFit time.Duration
	// Samples is the final training-set size.
	Samples int
	// FieldsTrained is the number of training fields.
	FieldsTrained int
}

// Total returns the end-to-end training time.
func (s TrainStats) Total() time.Duration {
	return s.StationarySweep + s.Augmentation + s.ModelFit
}

// Framework is a trained FXRZ instance for one compressor.
type Framework struct {
	cfg        Config
	axis       compress.Axis
	compressor string
	model      ml.Regressor
	stats      TrainStats
	// ratioLo/ratioHi record the adjusted-ratio hull seen in training, used
	// to flag extrapolating requests.
	ratioLo, ratioHi float64
	// trainX/trainY retain the augmented training set for post-hoc analysis
	// (feature importance); they are not persisted by Save.
	trainX [][]float64
	trainY []float64
}

// WithParallelism returns a copy of the framework whose analysis passes
// (feature extraction, CA scan) run with the given worker budget
// (pool.Workers semantics). The model, hull and stats are shared; estimates
// are bit-identical at every setting.
func (fw *Framework) WithParallelism(workers int) *Framework {
	cp := *fw
	cp.cfg.Parallelism = workers
	return &cp
}

// SweepKnobs returns the stationary-point knob settings for a field: for
// error-bound axes, n log-uniform bounds between RelKnobMin·range and
// RelKnobMax·range; for precision axes, n integer precisions spanning the
// axis domain.
func SweepKnobs(axis compress.Axis, f *grid.Field, n int, relMin, relMax float64) []float64 {
	if axis.Kind == compress.Precision {
		return axis.Span(n)
	}
	vr := f.ValueRange()
	if vr <= 0 {
		vr = 1
	}
	sub := compress.Axis{Kind: compress.AbsErrorBound, Min: relMin * vr, Max: relMax * vr}
	return sub.Span(n)
}

// Train builds an FXRZ framework for the compressor from the training
// fields. Per field it measures stationary points (the only compressor runs
// in the whole pipeline), augments them through the interpolation curve, and
// assembles (features, ACR) → model-space-knob samples for the regressor.
func Train(c compress.Compressor, fields []*grid.Field, cfg Config) (*Framework, error) {
	return TrainWithCurves(c, fields, cfg, nil)
}

// TrainWithCurves is Train with an optional cache of pre-measured stationary
// curves keyed by field name. Fields missing from the cache are swept with
// the compressor as usual; cached fields cost no compressor runs. The cache
// lets experiment harnesses amortise sweeps across configurations that do
// not change the sweep itself (model family, λ, stride).
//
// Cache ownership contract: the curves map is read only on the calling
// goroutine, before any worker starts — a snapshot of the relevant entries is
// taken up front, so worker goroutines never touch the map. The caller must
// not mutate the map (or the cached curves) for the duration of the call;
// after TrainWithCurves returns, the map is the caller's again.
//
// The pipeline runs in three stages, each deterministic at any
// cfg.Parallelism: per-field feature extraction and CA scanning fan out
// across fields; the stationary sweeps for all uncached fields are flattened
// into one (field, knob) task list through a single bounded pool, with each
// measurement landing in its own indexed slot; the training set is then
// assembled serially in field order. Same seed + same fields therefore yield
// bit-identical models at every worker count.
func TrainWithCurves(c compress.Compressor, fields []*grid.Field, cfg Config, curves map[string]*Curve) (*Framework, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("core: no training fields")
	}
	defer obs.Span("train/total")()
	cfg = cfg.withDefaults()
	fw := &Framework{cfg: cfg, axis: c.Axis(), compressor: c.Name()}
	workers := pool.Workers(cfg.Parallelism)
	n := len(fields)
	obs.Add("train/fields", int64(n))

	// Snapshot the cache serially (see the ownership contract above).
	stopSnapshot := obs.Span("train/snapshot")
	fieldCurves := make([]*Curve, n)
	for i, f := range fields {
		fieldCurves[i] = curves[f.Name]
	}
	stopSnapshot()

	// Stage A: per-field analysis. With a single field the pool parallelises
	// inside the reductions instead of across fields.
	type analysis struct {
		feats []float64
		r     float64
	}
	inner := 1
	if n == 1 {
		inner = workers
	}
	stopAnalysis := obs.Span("train/analysis")
	analyses := make([]analysis, n)
	pool.Run(workers, n, func(i int) {
		a := analysis{feats: ExtractFeaturesParallel(fields[i], cfg.Stride, inner).Vector(), r: 1}
		if cfg.UseCA {
			a.r = NonConstantRatioParallel(fields[i], cfg.BlockSide, cfg.Lambda, inner)
		}
		analyses[i] = a
	})
	stopAnalysis()

	// Stage B: one flat (field, knob) task list for every uncached field.
	// RunErr reports the lowest-indexed failure, which is the same error the
	// serial field-by-field, knob-by-knob loop would have surfaced.
	type sweepTask struct {
		field int
		knob  float64
	}
	knobCount := make([]int, n)
	var tasks []sweepTask
	for i, f := range fields {
		if fieldCurves[i] != nil {
			continue
		}
		knobs := SweepKnobs(fw.axis, f, cfg.StationaryPoints, cfg.RelKnobMin, cfg.RelKnobMax)
		if len(knobs) < 2 {
			return nil, fmt.Errorf("core: training on %s: core: need at least 2 stationary knobs, got %d", f.Name, len(knobs))
		}
		knobCount[i] = len(knobs)
		for _, k := range knobs {
			tasks = append(tasks, sweepTask{field: i, knob: k})
		}
	}
	pts := make([]Stationary, len(tasks))
	t0 := time.Now()
	stopSweep := obs.Span("train/sweep")
	obs.Add("train/sweep_tasks", int64(len(tasks)))
	// Budget rule for nested pools: outer×inner ≈ workers, and the codec is
	// explicitly pinned to the inner width so a parallel-capable compressor's
	// zero-value default (all cores) cannot oversubscribe inside each task.
	sweepOuter, sweepInner := pool.Split(workers, len(tasks))
	cc := compress.WithWorkers(c, sweepInner)
	err := pool.RunErr(sweepOuter, len(tasks), func(ti int) error {
		t := tasks[ti]
		f := fields[t.field]
		r, err := compress.CompressRatio(cc, f, t.knob)
		if err != nil {
			return fmt.Errorf("core: training on %s: core: stationary point knob=%g on %s: %w", f.Name, t.knob, f.Name, err)
		}
		pts[ti] = Stationary{Knob: t.knob, Ratio: r}
		return nil
	})
	stopSweep()
	if err != nil {
		return nil, err
	}
	fw.stats.StationarySweep = time.Since(t0)

	ti := 0
	for i, f := range fields {
		if fieldCurves[i] != nil {
			continue
		}
		curve, err := NewCurve(fw.axis, pts[ti:ti+knobCount[i]])
		if err != nil {
			return nil, fmt.Errorf("core: training on %s: %w", f.Name, err)
		}
		fieldCurves[i] = curve
		ti += knobCount[i]
	}

	// Stage C: serial assembly in field order — sample order, and with it the
	// seeded model fit, is independent of the worker count.
	var X [][]float64
	var y []float64
	fw.ratioLo, fw.ratioHi = 0, 0

	stopAssembly := obs.Span("train/assembly")
	t1 := time.Now()
	for i := range fields {
		feats := analyses[i].feats
		r := analyses[i].r
		samples := fieldCurves[i].Augment(cfg.AugmentPerField)

		for _, s := range samples {
			acr := s.Ratio
			if cfg.UseCA {
				acr = AdjustRatio(s.Ratio, r)
			}
			X = append(X, append(append([]float64(nil), feats...), acr))
			y = append(y, fw.axis.ToModel(s.Knob))
			if fw.ratioHi == 0 || acr > fw.ratioHi {
				fw.ratioHi = acr
			}
			if fw.ratioLo == 0 || acr < fw.ratioLo {
				fw.ratioLo = acr
			}
		}
		fw.stats.FieldsTrained++
	}
	stopAssembly()
	fw.stats.Augmentation = time.Since(t1)
	fw.stats.Samples = len(X)

	var model ml.Regressor
	switch cfg.Model {
	case ModelRFR:
		model = ml.NewForest(ml.ForestConfig{Trees: cfg.Trees, Seed: cfg.Seed})
	case ModelAdaBoost:
		model = ml.NewAdaBoost(ml.AdaBoostConfig{Estimators: 60, MaxDepth: 6, Seed: cfg.Seed})
	case ModelSVR:
		model = ml.NewSVR(ml.SVRConfig{C: 10, Epsilon: 0.05, Epochs: 120, Seed: cfg.Seed})
	default:
		return nil, fmt.Errorf("core: unknown model kind %q", cfg.Model)
	}
	t2 := time.Now()
	stopFit := obs.Span("train/fit")
	if err := model.Fit(X, y); err != nil {
		stopFit()
		return nil, fmt.Errorf("core: model fit: %w", err)
	}
	stopFit()
	fw.stats.ModelFit = time.Since(t2)
	fw.model = model
	fw.trainX, fw.trainY = X, y
	return fw, nil
}

// InputNames lists the model inputs in training order: the five adopted
// features followed by the (adjusted) target ratio.
var InputNames = []string{"ValueRange", "MeanValue", "MND", "MLD", "MSD", "ACR"}

// FeatureImportance returns the permutation importance of each model input
// over the retained training set (ΔMAE in model space when the input is
// shuffled). It quantifies which features the trained model actually leans
// on — the model-side complement of the paper's Table II correlations.
func (fw *Framework) FeatureImportance(repeats int, seed int64) ([]float64, error) {
	if fw.model == nil || len(fw.trainX) == 0 {
		return nil, fmt.Errorf("core: framework has no retained training data (loaded from disk?)")
	}
	return ml.PermutationImportance(fw.model, fw.trainX, fw.trainY, repeats, seed)
}

// Stats returns the training-time breakdown.
func (fw *Framework) Stats() TrainStats { return fw.stats }

// CompressorName reports which codec the framework was trained for.
func (fw *Framework) CompressorName() string { return fw.compressor }

// Axis returns the knob axis of the framework's compressor.
func (fw *Framework) Axis() compress.Axis { return fw.axis }

// TrainedRatioRange reports the adjusted-ratio hull covered by training.
func (fw *Framework) TrainedRatioRange() (lo, hi float64) { return fw.ratioLo, fw.ratioHi }
