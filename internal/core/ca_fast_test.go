package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// The full-block min/max kernels must produce the exact odometer counts on
// every shape class: block-aligned, ragged edges, unit dims, and ≥ 4-d
// fields (which always take the generic path). NaN samples are included —
// both traversals skip them identically because NaN comparisons are false.
func TestCountNonConstantBlocksFastMatchesOdometer(t *testing.T) {
	shapes := [][]int{
		{5}, {16}, {64},
		{4, 4}, {9, 7}, {16, 17},
		{4, 4, 4}, {8, 8, 8}, {7, 9, 5}, {1, 4, 13},
		{3, 4, 5, 6}, {4, 4, 4, 4},
	}
	rng := rand.New(rand.NewSource(13))
	for _, shape := range shapes {
		f := grid.MustNew("ca", shape...)
		for i := range f.Data {
			f.Data[i] = rng.Float32() * 10
			if i%97 == 0 {
				f.Data[i] = float32(math.NaN())
			}
		}
		for _, side := range []int{2, 4, 5} {
			nd := f.NDims()
			nblocks := make([]int, nd)
			total := 1
			for i, d := range f.Dims {
				nblocks[i] = (d + side - 1) / side
				total *= nblocks[i]
			}
			strides := f.Strides()
			for _, threshold := range []float64{0, 0.5, 5, 100} {
				fast := countNonConstantBlocks(f, side, nblocks, strides, 0, total, threshold, false)
				gen := countNonConstantBlocks(f, side, nblocks, strides, 0, total, threshold, true)
				if fast != gen {
					t.Fatalf("shape %v side %d thr %g: fast %d, odometer %d",
						shape, side, threshold, fast, gen)
				}
			}
		}
	}
}
