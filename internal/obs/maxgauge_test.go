package obs

import (
	"sync"
	"testing"
)

func TestMaxGauge(t *testing.T) {
	withLive(t, func() {
		MaxGauge("peak", 5)
		MaxGauge("peak", 3) // lower: must not regress
		MaxGauge("peak", 9)
		MaxGauge("peak", 9) // equal: no-op
		s := TakeSnapshot()
		if s.Gauges["peak"] != 9 {
			t.Errorf("peak = %d, want 9", s.Gauges["peak"])
		}
	})
}

// Concurrent raisers must settle on the global maximum (the CAS loop's whole
// point); run under -race.
func TestMaxGaugeConcurrent(t *testing.T) {
	withLive(t, func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for v := 0; v <= 1000; v++ {
					MaxGauge("peak", int64(v*8+g))
				}
			}(g)
		}
		wg.Wait()
		if got := TakeSnapshot().Gauges["peak"]; got != 8007 {
			t.Errorf("peak = %d, want 8007", got)
		}
	})
}

func TestMaxGaugeDisabledIsInert(t *testing.T) {
	Disable()
	MaxGauge("peak", 42)
	if s := TakeSnapshot(); len(s.Gauges) != 0 {
		t.Fatalf("disabled snapshot not empty: %+v", s.Gauges)
	}
}
