// Package obs is FXRZ's lightweight observability layer: named counters,
// atomic gauges, timing histograms with percentile summaries, and span-style
// scoped timers that aggregate per-stage wall time and invocation counts.
//
// The layer is observational only — nothing read from it ever feeds back into
// training or inference, so instrumented code produces bit-identical results
// with recording on or off (the Parallelism-equality tests in internal/core
// run with recording enabled to enforce this).
//
// Recording is disabled by default. At startup a process opts in with
// Enable(), which swaps the process-wide no-op recorder for a live one; every
// recording call goes through one atomic pointer load, so the disabled cost
// on hot paths is a single predictable branch and no allocation. Span in
// particular returns a shared no-op closure when disabled — it does not even
// read the clock.
//
// Typical use:
//
//	defer obs.Span("train/sweep")()      // scoped stage timer
//	obs.Inc("compressor_runs/sz")        // named counter
//	obs.SetGauge("pool/workers", 8)      // atomic gauge
//
// Aggregated state is exported with TakeSnapshot (JSON-marshalable, see
// Snapshot) or published to expvar with Publish.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Recorder receives observability events. Two implementations exist: the
// package-private no-op recorder (the startup default) and the live recorder
// installed by Enable. Code under instrumentation always calls the package
// functions, which delegate to the active recorder.
type Recorder interface {
	// Add adds delta to the named counter.
	Add(name string, delta int64)
	// SetGauge stores v in the named gauge.
	SetGauge(name string, v int64)
	// AddGauge adds delta to the named gauge.
	AddGauge(name string, delta int64)
	// MaxGauge raises the named gauge to v if v exceeds its current value.
	MaxGauge(name string, v int64)
	// Observe records one duration sample in the named timing histogram.
	Observe(name string, d time.Duration)
	// Span starts a scoped timer; calling the returned func records the
	// elapsed time under name and bumps its invocation count.
	Span(name string) func()
	// Snapshot returns the aggregated state.
	Snapshot() *Snapshot
	// Reset clears all recorded state.
	Reset()
}

// nop is the disabled recorder: every method is a no-op and Span hands back a
// shared closure so a disabled span costs neither clock reads nor
// allocations.
type nop struct{}

var nopStop = func() {}

func (nop) Add(string, int64)             {}
func (nop) SetGauge(string, int64)        {}
func (nop) AddGauge(string, int64)        {}
func (nop) MaxGauge(string, int64)        {}
func (nop) Observe(string, time.Duration) {}
func (nop) Span(string) func()            { return nopStop }
func (nop) Snapshot() *Snapshot           { return &Snapshot{} }
func (nop) Reset()                        {}

// live is the recording recorder. Registries are sync.Maps so the steady
// state (metric already registered) is a lock-free read.
type live struct {
	counters sync.Map // name -> *atomic.Int64
	gauges   sync.Map // name -> *atomic.Int64
	hists    sync.Map // name -> *Histogram
}

func (l *live) counter(name string) *atomic.Int64 {
	if v, ok := l.counters.Load(name); ok {
		return v.(*atomic.Int64)
	}
	v, _ := l.counters.LoadOrStore(name, new(atomic.Int64))
	return v.(*atomic.Int64)
}

func (l *live) gauge(name string) *atomic.Int64 {
	if v, ok := l.gauges.Load(name); ok {
		return v.(*atomic.Int64)
	}
	v, _ := l.gauges.LoadOrStore(name, new(atomic.Int64))
	return v.(*atomic.Int64)
}

func (l *live) hist(name string) *Histogram {
	if v, ok := l.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := l.hists.LoadOrStore(name, newHistogram())
	return v.(*Histogram)
}

func (l *live) Add(name string, delta int64)      { l.counter(name).Add(delta) }
func (l *live) SetGauge(name string, v int64)     { l.gauge(name).Store(v) }
func (l *live) AddGauge(name string, delta int64) { l.gauge(name).Add(delta) }

// MaxGauge is a CAS loop so concurrent writers (e.g. wavefront workers
// reporting their widest hyperplane) settle on the true maximum.
func (l *live) MaxGauge(name string, v int64) {
	g := l.gauge(name)
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}
func (l *live) Observe(name string, d time.Duration) { l.hist(name).Observe(d) }

func (l *live) Span(name string) func() {
	t0 := time.Now()
	return func() { l.hist(name).Observe(time.Since(t0)) }
}

func (l *live) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Spans:    map[string]SpanStats{},
	}
	l.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	l.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	l.hists.Range(func(k, v any) bool {
		s.Spans[k.(string)] = v.(*Histogram).Stats()
		return true
	})
	return s
}

func (l *live) Reset() {
	l.counters.Range(func(k, _ any) bool { l.counters.Delete(k); return true })
	l.gauges.Range(func(k, _ any) bool { l.gauges.Delete(k); return true })
	l.hists.Range(func(k, _ any) bool { l.hists.Delete(k); return true })
}

// active holds the recorder every package function delegates to. It starts
// as the no-op recorder; Enable swaps in a live one. The extra indirection
// through a struct keeps the interface value behind a single atomic pointer.
var active atomic.Pointer[holder]

type holder struct{ r Recorder }

func init() { active.Store(&holder{r: nop{}}) }

// Enable installs a live recorder, preserving state across repeated calls.
// It returns the active recorder for callers that want a handle.
func Enable() Recorder {
	h := active.Load()
	if _, ok := h.r.(*live); ok {
		return h.r
	}
	r := &live{}
	active.Store(&holder{r: r})
	return r
}

// Disable reinstalls the no-op recorder, dropping any recorded state.
func Disable() { active.Store(&holder{r: nop{}}) }

// Enabled reports whether a live recorder is installed.
func Enabled() bool {
	_, ok := active.Load().r.(*live)
	return ok
}

// Active returns the recorder currently installed.
func Active() Recorder { return active.Load().r }

// Inc adds 1 to the named counter.
func Inc(name string) { active.Load().r.Add(name, 1) }

// Add adds delta to the named counter.
func Add(name string, delta int64) { active.Load().r.Add(name, delta) }

// SetGauge stores v in the named gauge.
func SetGauge(name string, v int64) { active.Load().r.SetGauge(name, v) }

// AddGauge adds delta to the named gauge.
func AddGauge(name string, delta int64) { active.Load().r.AddGauge(name, delta) }

// MaxGauge raises the named gauge to v if v exceeds its current value.
func MaxGauge(name string, v int64) { active.Load().r.MaxGauge(name, v) }

// Observe records one duration sample in the named timing histogram.
func Observe(name string, d time.Duration) { active.Load().r.Observe(name, d) }

// Span starts a scoped timer for a named stage; invoke the returned func to
// record the elapsed wall time and bump the stage's invocation count:
//
//	defer obs.Span("train/sweep")()
//
// When recording is disabled the returned closure is shared and free.
func Span(name string) func() { return active.Load().r.Span(name) }

// TakeSnapshot aggregates the current state of the active recorder.
func TakeSnapshot() *Snapshot { return active.Load().r.Snapshot() }

// Reset clears all state recorded so far (live recorder only).
func Reset() { active.Load().r.Reset() }
