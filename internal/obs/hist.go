package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two duration buckets. Bucket i
// counts samples whose nanosecond count has bit length i, so the range
// spans 1ns through ~292 years — every time.Duration lands somewhere.
const histBuckets = 64

// Histogram is a concurrency-safe timing histogram: power-of-two buckets
// plus exact count/sum/min/max. Percentiles are estimated from the bucket
// the requested rank falls in (geometric midpoint), which is accurate to
// within a factor of √2 — plenty for per-stage wall-time summaries.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; math.MaxInt64 when empty
	max     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketOf maps a duration to its power-of-two bucket index.
func bucketOf(d time.Duration) int {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	return bits.Len64(uint64(ns))
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bucketOf(d)].Add(1)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Total returns the summed duration of all samples.
func (h *Histogram) Total() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) from the bucket counts.
// It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the requested sample, 1-based.
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			return bucketMid(i, h.min.Load(), h.max.Load())
		}
	}
	return time.Duration(h.max.Load())
}

// bucketMid returns the representative duration of bucket i — the geometric
// midpoint of [2^(i-1), 2^i), clamped into the observed [min, max] range so
// single-bucket histograms report sensible values.
func bucketMid(i int, mn, mx int64) time.Duration {
	var lo, hi float64
	if i == 0 {
		return 0
	}
	lo = math.Exp2(float64(i - 1))
	hi = math.Exp2(float64(i))
	mid := int64(math.Sqrt(lo * hi))
	if mid < mn {
		mid = mn
	}
	if mid > mx {
		mid = mx
	}
	return time.Duration(mid)
}

// Stats summarises the histogram for a Snapshot.
func (h *Histogram) Stats() SpanStats {
	n := h.count.Load()
	s := SpanStats{Count: n}
	if n == 0 {
		return s
	}
	total := time.Duration(h.sum.Load())
	s.TotalMS = ms(total)
	s.MeanMS = ms(total / time.Duration(n))
	s.MinMS = ms(time.Duration(h.min.Load()))
	s.MaxMS = ms(time.Duration(h.max.Load()))
	s.P50MS = ms(h.Quantile(0.50))
	s.P90MS = ms(h.Quantile(0.90))
	s.P99MS = ms(h.Quantile(0.99))
	return s
}

// ms converts a duration to fractional milliseconds (the snapshot unit).
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
