package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// withLive runs fn against a fresh live recorder and restores the disabled
// default afterwards, so tests cannot leak state into each other.
func withLive(t *testing.T, fn func()) {
	t.Helper()
	Disable()
	Enable()
	t.Cleanup(Disable)
	fn()
}

func TestDisabledRecorderIsInert(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() = true after Disable")
	}
	Inc("c")
	Add("c", 5)
	SetGauge("g", 3)
	AddGauge("g", 2)
	Observe("h", time.Millisecond)
	stop := Span("h")
	stop()
	s := TakeSnapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Spans) != 0 {
		t.Fatalf("disabled snapshot not empty: %+v", s)
	}
	Reset() // no-op, must not panic
	if _, ok := Active().(nop); !ok {
		t.Fatalf("active recorder = %T, want nop", Active())
	}
}

func TestCountersAndGauges(t *testing.T) {
	withLive(t, func() {
		if !Enabled() {
			t.Fatal("Enabled() = false after Enable")
		}
		Inc("runs")
		Add("runs", 4)
		SetGauge("workers", 8)
		AddGauge("workers", -3)
		AddGauge("inflight", 2)
		s := TakeSnapshot()
		if s.Counters["runs"] != 5 {
			t.Errorf("runs = %d, want 5", s.Counters["runs"])
		}
		if s.Gauges["workers"] != 5 {
			t.Errorf("workers = %d, want 5", s.Gauges["workers"])
		}
		if s.Gauges["inflight"] != 2 {
			t.Errorf("inflight = %d, want 2", s.Gauges["inflight"])
		}
	})
}

func TestEnableIsIdempotent(t *testing.T) {
	withLive(t, func() {
		Inc("kept")
		r := Enable() // second Enable must keep state
		if r != Active() {
			t.Error("Enable did not return the active recorder")
		}
		if got := TakeSnapshot().Counters["kept"]; got != 1 {
			t.Errorf("counter lost across Enable: %d", got)
		}
	})
}

func TestSpanRecordsElapsedTime(t *testing.T) {
	withLive(t, func() {
		stop := Span("stage/a")
		time.Sleep(2 * time.Millisecond)
		stop()
		Span("stage/a")() // a second, near-zero invocation
		s := TakeSnapshot()
		st, ok := s.Spans["stage/a"]
		if !ok {
			t.Fatal("span stage/a missing from snapshot")
		}
		if st.Count != 2 {
			t.Errorf("count = %d, want 2", st.Count)
		}
		if st.TotalMS < 2 {
			t.Errorf("total = %vms, want >= 2ms", st.TotalMS)
		}
		if st.MaxMS < st.MinMS {
			t.Errorf("max %v < min %v", st.MaxMS, st.MinMS)
		}
	})
}

func TestObserveAndReset(t *testing.T) {
	withLive(t, func() {
		Observe("h", 10*time.Millisecond)
		Observe("h", 20*time.Millisecond)
		s := TakeSnapshot()
		if s.Spans["h"].Count != 2 {
			t.Fatalf("count = %d, want 2", s.Spans["h"].Count)
		}
		Reset()
		s = TakeSnapshot()
		if len(s.Spans)+len(s.Counters)+len(s.Gauges) != 0 {
			t.Fatalf("state survived Reset: %+v", s)
		}
	})
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	if h.Stats().Count != 0 {
		t.Error("empty histogram stats non-zero")
	}
	// 100 samples: 1ms ... 100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Total() != 5050*time.Millisecond {
		t.Fatalf("total = %v", h.Total())
	}
	// Power-of-two buckets are accurate to within ~√2; check the ballpark.
	p50 := h.Quantile(0.50)
	if p50 < 20*time.Millisecond || p50 > 100*time.Millisecond {
		t.Errorf("p50 = %v, want within [20ms, 100ms]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
	// Clamped quantile arguments.
	if h.Quantile(-1) == 0 && h.Count() > 0 {
		// q<0 clamps to the smallest sample's bucket, which is non-zero here
		t.Error("q=-1 returned 0 for non-empty histogram")
	}
	if h.Quantile(2) > 100*time.Millisecond {
		t.Errorf("q=2 exceeds max: %v", h.Quantile(2))
	}
	st := h.Stats()
	if st.MinMS != 1 || st.MaxMS != 100 {
		t.Errorf("min/max = %v/%v, want 1/100", st.MinMS, st.MaxMS)
	}
	if st.MeanMS < 50 || st.MeanMS > 51 {
		t.Errorf("mean = %v, want 50.5", st.MeanMS)
	}
}

func TestHistogramNegativeAndZeroDurations(t *testing.T) {
	h := newHistogram()
	h.Observe(-time.Second) // clock skew safety: clamps to 0
	h.Observe(0)
	if h.Count() != 2 || h.Total() != 0 {
		t.Fatalf("count=%d total=%v", h.Count(), h.Total())
	}
	if q := h.Quantile(1); q != 0 {
		t.Errorf("quantile = %v, want 0", q)
	}
}

func TestBucketMid(t *testing.T) {
	if bucketMid(0, 0, 0) != 0 {
		t.Error("bucket 0 mid != 0")
	}
	// Midpoint clamps into the observed range.
	if got := bucketMid(20, 5, 10); got != 10 {
		t.Errorf("clamped mid = %v, want 10", got)
	}
	if got := bucketMid(1, 100, 200); got != 100 {
		t.Errorf("clamped mid = %v, want 100", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	withLive(t, func() {
		Inc("a")
		SetGauge("b", 7)
		Observe("c", time.Millisecond)
		var buf bytes.Buffer
		if err := TakeSnapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var got Snapshot
		if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
			t.Fatal(err)
		}
		if got.Counters["a"] != 1 || got.Gauges["b"] != 7 || got.Spans["c"].Count != 1 {
			t.Errorf("round trip lost data: %+v", got)
		}
	})
}

func TestWriteJSONFile(t *testing.T) {
	withLive(t, func() {
		Inc("x")
		path := filepath.Join(t.TempDir(), "snap.json")
		if err := TakeSnapshot().WriteJSONFile(path); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var got Snapshot
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if got.Counters["x"] != 1 {
			t.Errorf("file snapshot = %+v", got)
		}
		// Unwritable path surfaces the error.
		if err := TakeSnapshot().WriteJSONFile(filepath.Join(path, "nope")); err == nil {
			t.Error("expected error for unwritable path")
		}
	})
}

func TestTimingTable(t *testing.T) {
	if (&Snapshot{}).TimingTable() != "" {
		t.Error("empty snapshot produced a table")
	}
	withLive(t, func() {
		Observe("fast", time.Millisecond)
		Observe("slow", 50*time.Millisecond)
		Observe("slow", 50*time.Millisecond)
		table := TakeSnapshot().TimingTable()
		if !strings.Contains(table, "slow") || !strings.Contains(table, "fast") {
			t.Fatalf("table missing stages:\n%s", table)
		}
		// Sorted by total wall time: slow (100ms) before fast (1ms).
		if strings.Index(table, "slow") > strings.Index(table, "fast") {
			t.Errorf("table not sorted by total time:\n%s", table)
		}
		if !strings.Contains(table, "stage") {
			t.Errorf("table missing header:\n%s", table)
		}
	})
}

func TestPublishExpvar(t *testing.T) {
	withLive(t, func() {
		Inc("published")
		Publish()
		Publish() // idempotent
		v := expvar.Get("fxrz_obs")
		if v == nil {
			t.Fatal("fxrz_obs not registered")
		}
		var got Snapshot
		if err := json.Unmarshal([]byte(v.String()), &got); err != nil {
			t.Fatal(err)
		}
		if got.Counters["published"] != 1 {
			t.Errorf("expvar snapshot = %+v", got)
		}
	})
}

func TestConcurrentRecording(t *testing.T) {
	withLive(t, func() {
		const goroutines = 8
		const perG = 500
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					Inc("conc/counter")
					AddGauge("conc/gauge", 1)
					Observe("conc/hist", time.Duration(i)*time.Microsecond)
				}
			}()
		}
		wg.Wait()
		s := TakeSnapshot()
		if s.Counters["conc/counter"] != goroutines*perG {
			t.Errorf("counter = %d, want %d", s.Counters["conc/counter"], goroutines*perG)
		}
		if s.Gauges["conc/gauge"] != goroutines*perG {
			t.Errorf("gauge = %d, want %d", s.Gauges["conc/gauge"], goroutines*perG)
		}
		if s.Spans["conc/hist"].Count != goroutines*perG {
			t.Errorf("hist count = %d, want %d", s.Spans["conc/hist"].Count, goroutines*perG)
		}
	})
}

func TestQuantileMonotonic(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(math.Pow(1.01, float64(i))) * time.Microsecond)
	}
	prev := time.Duration(0)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("quantile %v = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}
