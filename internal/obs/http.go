package obs

import "net/http"

// Handler returns an http.Handler that serves the active recorder's
// snapshot as indented JSON — the body behind fxrzd's /metrics endpoint.
// With recording disabled it serves an empty snapshot, so the endpoint is
// always safe to mount.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// WriteJSON only fails when the ResponseWriter does, at which point
		// the status line is already on the wire; nothing useful remains.
		_ = TakeSnapshot().WriteJSON(w)
	})
}
