package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHandlerServesSnapshot(t *testing.T) {
	Enable()
	defer Disable()
	Reset()
	Inc("http_test/hits")
	Observe("http_test/latency", 3*time.Millisecond)

	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["http_test/hits"] != 1 {
		t.Errorf("counter = %d", s.Counters["http_test/hits"])
	}
	if st, ok := s.Spans["http_test/latency"]; !ok || st.Count != 1 {
		t.Errorf("span stats = %+v (ok=%v)", st, ok)
	}
}

func TestHandlerDisabledServesEmpty(t *testing.T) {
	Disable()
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if len(s.Counters) != 0 || len(s.Spans) != 0 {
		t.Errorf("disabled snapshot not empty: %+v", s)
	}
}
