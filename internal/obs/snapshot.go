package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// SpanStats is the aggregated summary of one timing histogram / span stage.
// All durations are fractional milliseconds, chosen so snapshots read
// naturally for stages ranging from sub-millisecond compressor runs to
// multi-minute sweeps.
type SpanStats struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
	MinMS   float64 `json:"min_ms"`
	MaxMS   float64 `json:"max_ms"`
	P50MS   float64 `json:"p50_ms"`
	P90MS   float64 `json:"p90_ms"`
	P99MS   float64 `json:"p99_ms"`
}

// Snapshot is a point-in-time export of everything the active recorder has
// aggregated. It marshals directly to the JSON schema documented in the
// README's Observability section.
type Snapshot struct {
	Counters map[string]int64     `json:"counters,omitempty"`
	Gauges   map[string]int64     `json:"gauges,omitempty"`
	Spans    map[string]SpanStats `json:"spans,omitempty"`
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSONFile writes the snapshot to a file (the -obs-json flag target).
func (s *Snapshot) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TimingTable renders the span stages as a fixed-width table sorted by total
// wall time (descending), the format cmd/expbench prints after a session.
// It returns "" when no spans were recorded.
func (s *Snapshot) TimingTable() string {
	if len(s.Spans) == 0 {
		return ""
	}
	names := make([]string, 0, len(s.Spans))
	for n := range s.Spans {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := s.Spans[names[i]], s.Spans[names[j]]
		if a.TotalMS != b.TotalMS {
			return a.TotalMS > b.TotalMS
		}
		return names[i] < names[j]
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %8s %12s %10s %10s %10s\n",
		"stage", "count", "total_ms", "mean_ms", "p90_ms", "max_ms")
	for _, n := range names {
		st := s.Spans[n]
		fmt.Fprintf(&sb, "%-28s %8d %12.2f %10.3f %10.3f %10.3f\n",
			n, st.Count, st.TotalMS, st.MeanMS, st.P90MS, st.MaxMS)
	}
	return sb.String()
}

// publishOnce guards the process-global expvar registration (expvar panics
// on duplicate names).
var publishOnce sync.Once

// Publish registers the active recorder's snapshot as the expvar variable
// "fxrz_obs", served on /debug/vars by any HTTP server using the default
// mux (cmd/fxrz's -pprof flag starts one). Safe to call more than once.
func Publish() {
	publishOnce.Do(func() {
		expvar.Publish("fxrz_obs", expvar.Func(func() any { return TakeSnapshot() }))
	})
}
