package fieldio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/fxrz-go/fxrz/internal/grid"
)

func TestRoundTrip(t *testing.T) {
	f := grid.MustNew("a test field", 3, 4, 5)
	for i := range f.Data {
		f.Data[i] = float32(i) * 0.25
	}
	// Bit-exactness must survive NaN payloads and infinities.
	f.Data[0] = float32(math.NaN())
	f.Data[1] = float32(math.Inf(1))
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "a_test_field" {
		t.Errorf("name = %q", g.Name)
	}
	if len(g.Dims) != 3 || g.Dims[0] != 3 || g.Dims[1] != 4 || g.Dims[2] != 5 {
		t.Errorf("dims = %v", g.Dims)
	}
	for i := range f.Data {
		if math.Float32bits(f.Data[i]) != math.Float32bits(g.Data[i]) {
			t.Fatalf("sample %d: %x != %x", i, math.Float32bits(f.Data[i]), math.Float32bits(g.Data[i]))
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"wrong magic":  "notafield x 3\nxxxx",
		"no dims":      "fxrzfield x\n",
		"bad dim":      "fxrzfield x 3 four\n",
		"zero dim":     "fxrzfield x 0\n",
		"neg dim":      "fxrzfield x -3\n",
		"too many":     "fxrzfield x 2 2 2 2 2\n",
		"overflow dim": "fxrzfield x 9999999 9999999 9999999\n",
		"truncated":    "fxrzfield x 2 2\n\x00\x00",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadRejectsUnboundedHeader(t *testing.T) {
	// A binary stream with no newline must fail fast, not buffer forever.
	junk := strings.Repeat("\xff", 3*maxHeaderLen)
	if _, err := Read(strings.NewReader(junk)); err == nil {
		t.Fatal("headerless binary stream accepted")
	}
}
