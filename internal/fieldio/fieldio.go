// Package fieldio reads and writes the fxrzfield container — the tiny
// self-describing on-disk and on-wire format for dense float32 fields used
// by cmd/fxrz files and the fxrzd HTTP endpoints alike:
//
//	fxrzfield <name> <d0> [d1 ...]\n
//	<little-endian float32 samples, row-major>
//
// The header line is ASCII so a field file identifies itself under `head`;
// the payload is raw sample bits, so round trips are bit-exact (NaN
// payloads included).
package fieldio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// magicWord opens every container header line.
const magicWord = "fxrzfield"

// maxHeaderLen bounds the header line a reader will buffer before giving
// up: a name plus four 13-digit dims fit comfortably, while a binary blob
// mistaken for a field file fails fast instead of buffering gigabytes
// hunting for a newline.
const maxHeaderLen = 4096

// Write serialises f to w in the fxrzfield container format.
func Write(w io.Writer, f *grid.Field) error {
	bw := bufio.NewWriter(w)
	name := strings.ReplaceAll(f.Name, " ", "_")
	if name == "" {
		name = "field"
	}
	if _, err := fmt.Fprintf(bw, "%s %s", magicWord, name); err != nil {
		return err
	}
	for _, d := range f.Dims {
		if _, err := fmt.Fprintf(bw, " %d", d); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	var buf [4]byte
	for _, v := range f.Data {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses one field from r. Dimension validation is grid's (1–4 strictly
// positive dims, bounded product), so a malicious header cannot demand an
// unbounded allocation beyond what its dims legitimately describe; callers
// reading from untrusted sources should additionally cap the reader itself
// (the serve layer uses http.MaxBytesReader).
func Read(r io.Reader) (*grid.Field, error) {
	br := bufio.NewReader(r)
	header, err := readHeaderLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.Fields(header)
	if len(parts) < 3 || parts[0] != magicWord {
		return nil, fmt.Errorf("fieldio: not an fxrzfield container")
	}
	name := parts[1]
	dims := make([]int, 0, len(parts)-2)
	for _, p := range parts[2:] {
		d, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("fieldio: bad dim %q", p)
		}
		dims = append(dims, d)
	}
	f, err := grid.New(name, dims...)
	if err != nil {
		return nil, fmt.Errorf("fieldio: %w", err)
	}
	raw := make([]byte, 4*f.Size())
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, fmt.Errorf("fieldio: reading %d samples: %w", f.Size(), err)
	}
	for i := range f.Data {
		f.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return f, nil
}

// readHeaderLine reads up to maxHeaderLen bytes of the ASCII header line.
func readHeaderLine(br *bufio.Reader) (string, error) {
	var sb strings.Builder
	for sb.Len() < maxHeaderLen {
		b, err := br.ReadByte()
		if err != nil {
			return "", fmt.Errorf("fieldio: reading header: %w", err)
		}
		if b == '\n' {
			return sb.String(), nil
		}
		sb.WriteByte(b)
	}
	return "", fmt.Errorf("fieldio: header line exceeds %d bytes", maxHeaderLen)
}
