package exp

import (
	"fmt"
	"strings"

	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/metrics"
)

// Fig4Result reproduces Fig 4: the wave textures/patterns of an RTM
// snapshot, rendered as an ASCII intensity map (the feature MSD is designed
// to detect exactly these).
type Fig4Result struct {
	Name   string
	Slice  string
	MSDMap string
}

// Fig4 renders a mid-depth slice of an RTM snapshot.
func Fig4(s *Session) (*Fig4Result, error) {
	snaps, err := datagen.RTMSnapshots("small", []int{s.S.RTMTrainSteps[len(s.S.RTMTrainSteps)/2]}, s.S.RTMSize)
	if err != nil {
		return nil, err
	}
	f := snaps[0]
	img, err := metrics.RenderSlice(f, f.Dims[0]/3, 72)
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Name: f.Name, Slice: img}, nil
}

// String renders Fig 4.
func (r *Fig4Result) String() string {
	return fmt.Sprintf("Fig 4 — wave textures in an RTM snapshot (%s)\n%s", r.Name, r.Slice)
}

// Fig6Result reproduces Fig 6: constant vs non-constant block classification
// on Nyx temperature, the dataset the paper uses to illustrate the
// Compressibility Adjustment.
type Fig6Result struct {
	Name  string
	Map   string
	R     float64
	Slice string
}

// Fig6 classifies the blocks of a temperature slice.
func Fig6(s *Session) (*Fig6Result, error) {
	f, err := datagen.NyxField("temperature", 1, 1, s.S.NyxSize)
	if err != nil {
		return nil, err
	}
	blockMap, err := metrics.RenderConstantBlocks(f, f.Dims[0]/2, 4, 0.15)
	if err != nil {
		return nil, err
	}
	img, err := metrics.RenderSlice(f, f.Dims[0]/2, 72)
	if err != nil {
		return nil, err
	}
	// The R shown is the full-volume ratio, like Formula (4) uses.
	nonConst := 0
	total := 0
	for _, c := range blockMap {
		switch c {
		case '#':
			nonConst++
			total++
		case '.':
			total++
		}
	}
	r := 0.0
	if total > 0 {
		r = float64(nonConst) / float64(total)
	}
	return &Fig6Result{Name: f.Name, Map: blockMap, R: r, Slice: img}, nil
}

// String renders Fig 6.
func (r *Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6 — constant ('.') vs non-constant ('#') blocks (%s, mid slice)\n", r.Name)
	b.WriteString(r.Map)
	fmt.Fprintf(&b, "slice non-constant fraction: %.2f\n", r.R)
	b.WriteString("\nunderlying temperature slice:\n")
	b.WriteString(r.Slice)
	return b.String()
}
