package exp

import (
	"fmt"
	"math"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/zfp"
)

// ZFPRateResult is the ablation behind the related-work claim motivating
// fixed-ratio frameworks (§II): ZFP's native fixed-rate mode reaches a
// target ratio *exactly*, but at the same ratio its distortion is far worse
// than fixed-accuracy mode (prior studies: ~2× lower ratio at equal
// distortion), because every 4³ block gets the same bit budget regardless of
// content. A fixed-ratio framework driving fixed-*accuracy* mode therefore
// dominates the trivial fixed-rate solution.
type ZFPRateResult struct {
	// Rows: dataset, tolerance, accuracy-mode ratio, accuracy-mode max
	// error, rate-mode max error at the same ratio, error inflation.
	Rows []ZFPRateRow
}

// ZFPRateRow is one measurement of the ablation.
type ZFPRateRow struct {
	Dataset        string
	Tolerance      float64
	Ratio          float64
	AccuracyMaxErr float64
	RateMaxErr     float64
	ErrInflation   float64
}

// ZFPRate runs the ablation on a Nyx field and a Hurricane field (one
// uniform-complexity and one highly non-uniform dataset).
func ZFPRate(s *Session) (*ZFPRateResult, error) {
	nyx, err := datagen.NyxField("baryon_density", 1, 1, s.S.NyxSize)
	if err != nil {
		return nil, err
	}
	hur, err := datagen.HurricaneField("QCLOUD", 10, s.S.HurricaneSize)
	if err != nil {
		return nil, err
	}
	acc := zfp.New()
	rate := zfp.NewFixedRate()
	res := &ZFPRateResult{}
	for _, f := range []*grid.Field{nyx, hur} {
		vr := f.ValueRange()
		for _, rel := range []float64{1e-4, 1e-3, 1e-2} {
			tol := rel * vr
			blobA, err := acc.Compress(f, tol)
			if err != nil {
				return nil, err
			}
			ratio := compress.Ratio(f, blobA)
			gA, err := acc.Decompress(blobA)
			if err != nil {
				return nil, err
			}
			errA, err := compress.MaxAbsError(f, gA)
			if err != nil {
				return nil, err
			}
			// Fixed-rate at the same overall ratio.
			r := 32 / ratio
			blobR, err := rate.Compress(f, r)
			if err != nil {
				return nil, err
			}
			gR, err := rate.Decompress(blobR)
			if err != nil {
				return nil, err
			}
			errR, err := compress.MaxAbsError(f, gR)
			if err != nil {
				return nil, err
			}
			infl := math.Inf(1)
			if errA > 0 {
				infl = errR / errA
			}
			res.Rows = append(res.Rows, ZFPRateRow{
				Dataset: f.Name, Tolerance: tol, Ratio: ratio,
				AccuracyMaxErr: errA, RateMaxErr: errR, ErrInflation: infl,
			})
		}
	}
	return res, nil
}

// MeanInflation averages the error-inflation factor across rows.
func (r *ZFPRateResult) MeanInflation() float64 {
	var s float64
	var n int
	for _, row := range r.Rows {
		if !math.IsInf(row.ErrInflation, 0) {
			s += row.ErrInflation
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// String renders the ablation.
func (r *ZFPRateResult) String() string {
	t := &Table{Title: "Ablation — ZFP fixed-rate vs fixed-accuracy at matched ratio (§II claim)",
		Header: []string{"dataset", "tolerance", "ratio", "max err (accuracy)", "max err (fixed-rate)", "inflation"}}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, f4(row.Tolerance), f2(row.Ratio), f4(row.AccuracyMaxErr), f4(row.RateMaxErr),
			fmt.Sprintf("%.1f×", row.ErrInflation))
	}
	t.AddNote("prior studies: fixed-rate needs ~2× more bits for equal distortion; inflation > 1 everywhere confirms it")
	return t.String()
}
