package exp

import (
	"fmt"
	"time"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/core"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/metrics"
)

// Fig89Result reproduces Figs 8–9: training and test data must genuinely
// differ, shown by distribution distance and standard deviations.
type Fig89Result struct {
	// Rows: app label, train σ, test σ, histogram L1 distance.
	Rows [][4]string
	// Distances keyed by app for programmatic checks.
	Distances map[string]float64
}

// Fig89 compares a representative train/test pair per capability level:
// Hurricane QCLOUD ts5 vs ts48 (level 1) and Nyx baryon config 1 vs 2
// (level 2).
func Fig89(s *Session) (*Fig89Result, error) {
	res := &Fig89Result{Distances: map[string]float64{}}

	hTrain, err := datagen.HurricaneField("QCLOUD", s.S.HurricaneTrainSteps[0], s.S.HurricaneSize)
	if err != nil {
		return nil, err
	}
	hTest, err := datagen.HurricaneField("QCLOUD", s.S.HurricaneTestStep, s.S.HurricaneSize)
	if err != nil {
		return nil, err
	}
	nTrain, err := datagen.NyxField("baryon_density", 1, s.S.NyxTrainSteps[0], s.S.NyxSize)
	if err != nil {
		return nil, err
	}
	nTest, err := datagen.NyxField("baryon_density", 2, s.S.NyxTestStep, s.S.NyxSize)
	if err != nil {
		return nil, err
	}
	type pair struct {
		label       string
		train, test *grid.Field
	}
	for _, p := range []pair{
		{"Hurricane QCLOUD (level 1: ts)", hTrain, hTest},
		{"Nyx Baryon Density (level 2: config)", nTrain, nTest},
	} {
		d, err := metrics.HistogramDistance(p.train, p.test, 64)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, [4]string{
			p.label,
			f4(metrics.StdDev(p.train)),
			f4(metrics.StdDev(p.test)),
			f4(d),
		})
		res.Distances[p.label] = d
	}
	return res, nil
}

// String renders Figs 8–9.
func (r *Fig89Result) String() string {
	t := &Table{Title: "Figs 8–9 — train/test variability",
		Header: []string{"dataset pair", "train stddev", "test stddev", "hist L1 distance"}}
	for _, row := range r.Rows {
		t.AddRow(row[0], row[1], row[2], row[3])
	}
	t.AddNote("non-zero distances confirm test data differs from training data")
	return t.String()
}

// Fig10Result reproduces Fig 10's distortion analysis: PSNR and structure
// (halo) displacement at the paper's three SZ error bounds on Nyx baryon
// density. The paper reports 0.46%/10.81%/79.17% halos mislocated at bounds
// 0.001/0.05/0.45 (relative to a range of ~4.9).
type Fig10Result struct {
	// Rows of (bound, ratio, PSNR, displaced fraction).
	Rows [][4]float64
}

// Fig10 runs SZ at three relative bounds spanning mild to severe distortion.
func Fig10(s *Session) (*Fig10Result, error) {
	f, err := datagen.NyxField("baryon_density", 1, 1, s.S.NyxSize)
	if err != nil {
		return nil, err
	}
	c, err := NewCompressor("sz")
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{}
	vr := f.ValueRange()
	for _, rel := range []float64{0.0002, 0.01, 0.09} { // ≈ paper's 0.001/0.05/0.45 on range ~4.9
		eb := rel * vr
		blob, err := c.Compress(f, eb)
		if err != nil {
			return nil, err
		}
		g, err := c.Decompress(blob)
		if err != nil {
			return nil, err
		}
		psnr, err := metrics.PSNR(f, g)
		if err != nil {
			return nil, err
		}
		disp, err := metrics.StructureDisplacement(f, g, 8)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, [4]float64{eb, compress.Ratio(f, blob), psnr, disp})
	}
	return res, nil
}

// String renders Fig 10.
func (r *Fig10Result) String() string {
	t := &Table{Title: "Fig 10 — distortion vs error bound (SZ, Nyx baryon density)",
		Header: []string{"error bound", "ratio", "PSNR (dB)", "structures displaced"}}
	for _, row := range r.Rows {
		t.AddRow(f4(row[0]), f2(row[1]), f2(row[2]), pct(row[3]))
	}
	t.AddNote("paper: halo mislocation grows 0.46%% → 10.81%% → 79.17%% across its three bounds")
	return t.String()
}

// Fig11Result reproduces Fig 11: the valid compression-ratio range per
// dataset (here: the trained framework's ratio hull, which the experiments
// draw targets from).
type Fig11Result struct {
	// Rows: dataset, compressor, lo, hi.
	Rows [][4]string
}

// Fig11 reports ranges for the paper's two example datasets with SZ.
func Fig11(s *Session) (*Fig11Result, error) {
	res := &Fig11Result{}
	for _, app := range []string{"nyx", "qmcpack"} {
		fw, err := s.Framework(app, "sz")
		if err != nil {
			return nil, err
		}
		tests, err := s.TestFields(app)
		if err != nil {
			return nil, err
		}
		for _, f := range tests[:1] {
			lo, hi := fw.ValidRatioRange(f)
			res.Rows = append(res.Rows, [4]string{f.Name, "sz", f2(lo), f2(hi)})
		}
	}
	return res, nil
}

// String renders Fig 11.
func (r *Fig11Result) String() string {
	t := &Table{Title: "Fig 11 — valid compression-ratio range (SZ)",
		Header: []string{"dataset", "compressor", "ratio lo", "ratio hi"}}
	for _, row := range r.Rows {
		t.AddRow(row[0], row[1], row[2], row[3])
	}
	t.AddNote("targets outside the range would need distortion beyond the dataset's acceptable band")
	return t.String()
}

// Table6Result reproduces Table VI: the FXRZ training-time breakdown per
// (application, compressor).
type Table6Result struct {
	// Stats[app][compressor].
	Stats map[string]map[string]core.TrainStats
}

// Table6 trains fresh frameworks (no sweep cache) so the timing is honest.
func Table6(s *Session) (*Table6Result, error) {
	res := &Table6Result{Stats: map[string]map[string]core.TrainStats{}}
	for _, app := range Apps {
		res.Stats[app] = map[string]core.TrainStats{}
		fields, err := s.TrainFields(app)
		if err != nil {
			return nil, err
		}
		for _, cname := range CompressorNames {
			c, err := NewCompressor(cname)
			if err != nil {
				return nil, err
			}
			fw, err := core.Train(c, fields, s.Config())
			if err != nil {
				return nil, err
			}
			res.Stats[app][cname] = fw.Stats()
		}
	}
	return res, nil
}

// String renders Table VI.
func (r *Table6Result) String() string {
	t := &Table{Title: "Table VI — FXRZ training time breakdown",
		Header: []string{"app", "compressor", "stationary sweep", "augmentation", "model fit", "total", "samples"}}
	var grand time.Duration
	cells := 0
	for _, app := range Apps {
		for _, c := range CompressorNames {
			st := r.Stats[app][c]
			t.AddRow(app, c, st.StationarySweep.Round(time.Millisecond).String(),
				st.Augmentation.Round(time.Microsecond).String(),
				st.ModelFit.Round(time.Millisecond).String(),
				st.Total().Round(time.Millisecond).String(),
				fmt.Sprintf("%d", st.Samples))
			grand += st.Total()
			cells++
		}
	}
	if cells > 0 {
		t.AddNote("mean training time %v (paper: 13.59 min on 512³ supercomputer datasets; the sweep dominates in both)", (grand / time.Duration(cells)).Round(time.Millisecond))
	}
	return t.String()
}
