package exp

import "fmt"

// ImportanceResult reports the permutation importance of the model inputs
// for the default frameworks — the model-side complement of Table II: the
// features the forest actually leans on when mapping (features, ACR) to an
// error configuration.
type ImportanceResult struct {
	// Imp[app][compressor] aligns with core.InputNames.
	Imp   map[string]map[string][]float64
	Names []string
}

// Importance measures per-(app, compressor) importances with SZ and ZFP.
func Importance(s *Session) (*ImportanceResult, error) {
	res := &ImportanceResult{Imp: map[string]map[string][]float64{},
		Names: []string{"ValueRange", "MeanValue", "MND", "MLD", "MSD", "ACR"}}
	for _, app := range Apps {
		res.Imp[app] = map[string][]float64{}
		for _, comp := range []string{"sz", "zfp"} {
			fw, err := s.Framework(app, comp)
			if err != nil {
				return nil, err
			}
			imp, err := fw.FeatureImportance(3, 11)
			if err != nil {
				return nil, err
			}
			res.Imp[app][comp] = imp
		}
	}
	return res, nil
}

// ACRDominant reports whether the target-ratio input carries the largest
// importance for the (app, compressor) pair — it must, since the ratio is
// the quantity being inverted; features only modulate the mapping.
func (r *ImportanceResult) ACRDominant(app, comp string) bool {
	imp := r.Imp[app][comp]
	if len(imp) != len(r.Names) {
		return false
	}
	acr := imp[len(imp)-1]
	for _, v := range imp[:len(imp)-1] {
		if v > acr {
			return false
		}
	}
	return true
}

// String renders the importance table.
func (r *ImportanceResult) String() string {
	t := &Table{Title: "Model-input permutation importance (ΔMAE in model space)",
		Header: append([]string{"app", "compressor"}, r.Names...)}
	for _, app := range Apps {
		for _, comp := range []string{"sz", "zfp"} {
			row := []string{app, comp}
			for _, v := range r.Imp[app][comp] {
				row = append(row, fmt.Sprintf("%.3f", v))
			}
			t.AddRow(row...)
		}
	}
	t.AddNote("ACR (the adjusted target ratio) must dominate; features modulate the inverse mapping")
	return t.String()
}
