package exp

import (
	"strings"
	"testing"

	"github.com/fxrz-go/fxrz/internal/core"
)

// The experiment harness is exercised at Tiny scale; the assertions check
// the paper's *qualitative* conclusions, which must hold at any scale.

func tinySession() *Session { return NewSession(Tiny) }

func TestSessionCatalogShapes(t *testing.T) {
	s := tinySession()
	for _, app := range Apps {
		train, err := s.TrainFields(app)
		if err != nil {
			t.Fatalf("%s train: %v", app, err)
		}
		test, err := s.TestFields(app)
		if err != nil {
			t.Fatalf("%s test: %v", app, err)
		}
		if len(train) < 2 {
			t.Errorf("%s: only %d training fields", app, len(train))
		}
		if len(test) < 1 {
			t.Errorf("%s: no test fields", app)
		}
		// Train/test must be disjoint by name.
		names := map[string]bool{}
		for _, f := range train {
			names[f.Name] = true
		}
		for _, f := range test {
			if names[f.Name] {
				t.Errorf("%s: test field %s also in training set", app, f.Name)
			}
		}
	}
}

func TestSessionCachesFrameworks(t *testing.T) {
	s := tinySession()
	a, err := s.Framework("rtm", "zfp")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Framework("rtm", "zfp")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("framework not cached")
	}
}

func TestTargetsInsideValidRange(t *testing.T) {
	s := tinySession()
	fw, err := s.Framework("rtm", "sz")
	if err != nil {
		t.Fatal(err)
	}
	tests, err := s.TestFields("rtm")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := fw.ValidRatioRange(tests[0])
	targets, err := s.Targets(fw, "sz", tests[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, tcr := range targets {
		if tcr < lo || tcr > hi {
			t.Errorf("target %v outside [%v, %v]", tcr, lo, hi)
		}
	}
}

func TestFig2InterpolationErrors(t *testing.T) {
	s := tinySession()
	r, err := Fig2(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range CompressorNames {
		if len(r.Curves[c]) < 3 {
			t.Errorf("%s: only %d stationary points", c, len(r.Curves[c]))
		}
		if e := r.InterpErrors[c]; e < 0 || e > 0.5 {
			t.Errorf("%s: interpolation error %v implausible (paper: 3–5.5%%)", c, e)
		}
	}
	if !strings.Contains(r.String(), "Fig 2") {
		t.Error("render missing title")
	}
}

func TestFig3Table1Signatures(t *testing.T) {
	s := tinySession()
	r, err := Fig3Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	// RTM fields must show the smallest value ranges (Table I signature).
	vr := func(i int) float64 { return r.Features[i].ValueRange }
	rtmMax := vr(2)
	if vr(3) > rtmMax {
		rtmMax = vr(3)
	}
	for _, i := range []int{0, 1, 4} { // nyx, qmcpack, hurricane
		if vr(i) <= rtmMax {
			t.Errorf("dataset %s range %v not larger than RTM's %v", r.Labels[i], vr(i), rtmMax)
		}
	}
	// Every compressor must report a positive ratio everywhere.
	for _, c := range CompressorNames {
		for i, ratio := range r.Ratios[c] {
			if ratio <= 0 {
				t.Errorf("%s on %s: ratio %v", c, r.Labels[i], ratio)
			}
		}
	}
	// RTM (smooth wavefields) must compress best under SZ.
	sz := r.Ratios["sz"]
	if sz[2] < sz[0] && sz[3] < sz[0] {
		t.Errorf("RTM SZ ratios (%v, %v) below Nyx (%v); paper has RTM highest", sz[2], sz[3], sz[0])
	}
}

func TestTable2GradientsWeakest(t *testing.T) {
	s := tinySession()
	r, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, c := range CompressorNames {
		if r.AdoptedBeatGradients(c) {
			wins++
		}
		for fi, v := range r.Corr[c] {
			if v < 0 || v > 1 {
				t.Errorf("%s feature %d: |r| = %v out of [0,1]", c, fi, v)
			}
		}
	}
	if wins < 3 {
		t.Errorf("adopted features beat gradients for only %d/4 compressors", wins)
	}
}

func TestFig89VariabilityPositive(t *testing.T) {
	s := tinySession()
	r, err := Fig89(s)
	if err != nil {
		t.Fatal(err)
	}
	for label, d := range r.Distances {
		if d <= 0 {
			t.Errorf("%s: histogram distance %v, want > 0", label, d)
		}
	}
}

func TestFig10DistortionMonotone(t *testing.T) {
	s := tinySession()
	r, err := Fig10(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// PSNR falls and displacement rises with looser bounds.
	if !(r.Rows[0][2] > r.Rows[1][2] && r.Rows[1][2] > r.Rows[2][2]) {
		t.Errorf("PSNR not decreasing: %v %v %v", r.Rows[0][2], r.Rows[1][2], r.Rows[2][2])
	}
	if r.Rows[2][3] < r.Rows[0][3] {
		t.Errorf("displacement not increasing: %v vs %v", r.Rows[2][3], r.Rows[0][3])
	}
}

func TestFig11RangesSane(t *testing.T) {
	s := tinySession()
	r, err := Fig11(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	out := r.String()
	if !strings.Contains(out, "Fig 11") {
		t.Error("render missing title")
	}
}

func TestCompareSmoke(t *testing.T) {
	// A reduced Compare run: one app, SZ+ZFP, one test field. The full grid
	// runs under expbench / the benchmark suite.
	s := tinySession()
	r, err := Compare(s, []string{"rtm"}, []string{"sz", "zfp"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fx, fr := r.Averages()
	if fx <= 0 || fx > 1 {
		t.Errorf("FXRZ avg error %v implausible", fx)
	}
	for _, it := range []int{6, 15} {
		if fr[it] <= 0 {
			t.Errorf("FRaZ-%d avg error %v", it, fr[it])
		}
	}
	if sp := r.SpeedupOverFRaZ(15); sp <= 1 {
		t.Errorf("FXRZ speedup over FRaZ %v, want > 1", sp)
	}
	for _, render := range []string{r.Fig12String(), r.Fig13String(), r.Table8String(), r.CapabilityString()} {
		if render == "" {
			t.Error("empty render")
		}
	}
}

func TestDumpGainsAboveOne(t *testing.T) {
	s := tinySession()
	r, err := Dump(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(r.Ranks) {
		t.Fatalf("rows/ranks mismatch")
	}
	for i, row := range r.Rows {
		if row[2] <= 1 {
			t.Errorf("ranks=%d: gain %v, want > 1 (paper: 1.18–8.71×)", r.Ranks[i], row[2])
		}
	}
}

func TestFig4And6Render(t *testing.T) {
	s := tinySession()
	f4, err := Fig4(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f4.String(), "Fig 4") || len(f4.Slice) < 100 {
		t.Error("Fig 4 render too small")
	}
	f6, err := Fig6(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f6.Map, ".") || !strings.Contains(f6.Map, "#") {
		t.Errorf("Fig 6 block map should contain both constant and non-constant blocks:\n%s", f6.Map)
	}
	if f6.R <= 0 || f6.R >= 1 {
		t.Errorf("slice non-constant fraction %v", f6.R)
	}
}

func TestImportanceACRDominant(t *testing.T) {
	s := tinySession()
	r, err := Importance(s)
	if err != nil {
		t.Fatal(err)
	}
	dominant := 0
	total := 0
	for _, app := range Apps {
		for _, comp := range []string{"sz", "zfp"} {
			total++
			if r.ACRDominant(app, comp) {
				dominant++
			}
		}
	}
	if dominant < total-1 {
		t.Errorf("ACR dominant in only %d/%d frameworks", dominant, total)
	}
}

func TestZFPRateInflationAboveOne(t *testing.T) {
	s := tinySession()
	r, err := ZFPRate(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	if infl := r.MeanInflation(); infl <= 1 {
		t.Errorf("mean error inflation %v, want > 1 (fixed-rate strictly worse)", infl)
	}
}

func TestTable6TimesPositive(t *testing.T) {
	s := tinySession()
	r, err := Table6(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range Apps {
		for _, c := range CompressorNames {
			st := r.Stats[app][c]
			if st.Total() <= 0 || st.Samples == 0 {
				t.Errorf("%s/%s: stats %+v", app, c, st)
			}
			if st.StationarySweep < st.Augmentation {
				t.Errorf("%s/%s: sweep (%v) should dominate augmentation (%v)", app, c, st.StationarySweep, st.Augmentation)
			}
		}
	}
}

func TestConfigDerivedFromScale(t *testing.T) {
	s := tinySession()
	cfg := s.Config()
	if cfg.StationaryPoints != Tiny.Stationary || cfg.Trees != Tiny.Trees {
		t.Errorf("config %+v does not reflect scale", cfg)
	}
	if cfg.Model != core.ModelRFR {
		t.Errorf("default model %v", cfg.Model)
	}
}

func TestTable3ModelsComparable(t *testing.T) {
	if testing.Short() {
		t.Skip("model-selection grid is slow")
	}
	s := tinySession()
	r, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's robust conclusion at any scale: SVR is the worst family.
	for _, app := range Table3Apps {
		for _, comp := range []string{"sz", "zfp"} {
			m := r.Err[app][comp]
			if m[core.ModelSVR] < m[core.ModelRFR] && m[core.ModelSVR] < m[core.ModelAdaBoost] {
				t.Errorf("%s/%s: SVR (%v) beat both tree ensembles (%v, %v)",
					app, comp, m[core.ModelSVR], m[core.ModelRFR], m[core.ModelAdaBoost])
			}
		}
	}
}

func TestSamplingKeepsAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling ablation is slow")
	}
	s := tinySession()
	r, err := Sampling(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.SampledFraction > 0.05 {
		t.Errorf("sampled fraction %v, want ~1.5%%", r.SampledFraction)
	}
	if r.FeatTimeSampled >= r.FeatTimeFull {
		t.Errorf("sampled extraction (%v) not faster than full (%v)", r.FeatTimeSampled, r.FeatTimeFull)
	}
	// Sampling may cost some accuracy but must stay in the same regime.
	if r.ErrSampled > 3*r.ErrFull+0.10 {
		t.Errorf("sampled error %v far above full %v", r.ErrSampled, r.ErrFull)
	}
}
