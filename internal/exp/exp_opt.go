package exp

import (
	"fmt"
	"time"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/core"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/metrics"
)

// EvalPoint is one accuracy measurement: a target ratio, the knob FXRZ
// chose, and the ratio the compressor actually delivered at that knob.
type EvalPoint struct {
	Field    string
	TCR      float64
	Knob     float64
	MCR      float64
	Err      float64 // |TCR-MCR|/TCR
	Analysis time.Duration
}

// evalFramework verifies a framework on test fields: nTCR targets per field
// spanning the valid range, each verified by actually compressing.
func evalFramework(s *Session, fw *core.Framework, c compress.Compressor, fields []*grid.Field, nTCR int) ([]EvalPoint, error) {
	var out []EvalPoint
	for _, f := range fields {
		targets, err := s.Targets(fw, c.Name(), f, nTCR)
		if err != nil {
			return nil, err
		}
		for _, tcr := range targets {
			est, err := fw.EstimateConfig(f, tcr)
			if err != nil {
				return nil, err
			}
			mcr, err := compress.CompressRatio(c, f, est.Knob)
			if err != nil {
				return nil, fmt.Errorf("exp: verifying knob %g on %s: %w", est.Knob, f.Name, err)
			}
			out = append(out, EvalPoint{
				Field: f.Name, TCR: tcr, Knob: est.Knob, MCR: mcr,
				Err: metrics.EstimationError(tcr, mcr), Analysis: est.AnalysisTime(),
			})
		}
	}
	return out, nil
}

func avgErr(points []EvalPoint) float64 {
	if len(points) == 0 {
		return 0
	}
	var s float64
	for _, p := range points {
		s += p.Err
	}
	return s / float64(len(points))
}

// Table3Result reproduces Table III: average estimation error of the three
// model families (RFR, AdaBoost, SVR) on example datasets with SZ and ZFP.
// The paper's conclusion — RFR lowest — must reproduce.
type Table3Result struct {
	// Err[compressor][model] per app: Err[app][compressor][model].
	Err map[string]map[string]map[core.ModelKind]float64
}

// Table3Apps are the three example applications the paper's table uses.
var Table3Apps = []string{"nyx", "qmcpack", "rtm"}

// Table3 trains each model family per (app, compressor) — reusing the
// cached stationary sweeps — and verifies on the app's test fields.
func Table3(s *Session) (*Table3Result, error) {
	res := &Table3Result{Err: map[string]map[string]map[core.ModelKind]float64{}}
	for _, app := range Table3Apps {
		res.Err[app] = map[string]map[core.ModelKind]float64{}
		trainFields, err := s.TrainFields(app)
		if err != nil {
			return nil, err
		}
		testFields, err := s.TestFields(app)
		if err != nil {
			return nil, err
		}
		for _, cname := range []string{"sz", "zfp"} {
			res.Err[app][cname] = map[core.ModelKind]float64{}
			c, err := NewCompressor(cname)
			if err != nil {
				return nil, err
			}
			curves, err := s.Curves(app, cname)
			if err != nil {
				return nil, err
			}
			for _, model := range []core.ModelKind{core.ModelRFR, core.ModelAdaBoost, core.ModelSVR} {
				cfg := s.Config()
				cfg.Model = model
				fw, err := core.TrainWithCurves(c, trainFields, cfg, curves)
				if err != nil {
					return nil, err
				}
				pts, err := evalFramework(s, fw, c, testFields, maxInt(4, s.S.TCRs/3))
				if err != nil {
					return nil, err
				}
				res.Err[app][cname][model] = avgErr(pts)
			}
		}
	}
	return res, nil
}

// RFRBest reports whether RFR has the lowest mean error overall.
func (r *Table3Result) RFRBest() bool {
	means := map[core.ModelKind]float64{}
	n := 0
	for _, byComp := range r.Err {
		for _, byModel := range byComp {
			for m, e := range byModel {
				means[m] += e
			}
			n++
		}
	}
	if n == 0 {
		return false
	}
	return means[core.ModelRFR] <= means[core.ModelAdaBoost] && means[core.ModelRFR] <= means[core.ModelSVR]
}

// String renders Table III.
func (r *Table3Result) String() string {
	t := &Table{Title: "Table III — average estimation error by model family",
		Header: []string{"app", "compressor", "RFR", "AdaBoost", "SVR"}}
	for _, app := range Table3Apps {
		for _, c := range []string{"sz", "zfp"} {
			m := r.Err[app][c]
			t.AddRow(app, c, pct(m[core.ModelRFR]), pct(m[core.ModelAdaBoost]), pct(m[core.ModelSVR]))
		}
	}
	t.AddNote("paper: RFR lowest on average; SVR suffers the highest errors")
	return t.String()
}

// SamplingResult reproduces the §IV-E1 ablation: stride-4 sampling (~1.5% of
// points on 3D data) must match full extraction's accuracy while cutting
// analysis time by roughly the sampling factor (paper: 8.24% vs 6.23% error,
// ~20× faster analysis).
type SamplingResult struct {
	ErrSampled, ErrFull           float64
	FeatTimeSampled, FeatTimeFull time.Duration
	SampledFraction               float64
}

// Sampling runs the ablation on Nyx with SZ.
func Sampling(s *Session) (*SamplingResult, error) {
	app, cname := "nyx", "sz"
	trainFields, err := s.TrainFields(app)
	if err != nil {
		return nil, err
	}
	testFields, err := s.TestFields(app)
	if err != nil {
		return nil, err
	}
	c, err := NewCompressor(cname)
	if err != nil {
		return nil, err
	}
	curves, err := s.Curves(app, cname)
	if err != nil {
		return nil, err
	}
	res := &SamplingResult{}
	for _, stride := range []int{4, 1} {
		cfg := s.Config()
		cfg.Stride = stride
		if stride <= 1 {
			cfg.Stride = 1
		}
		fw, err := core.TrainWithCurves(c, trainFields, cfg, curves)
		if err != nil {
			return nil, err
		}
		pts, err := evalFramework(s, fw, c, testFields, maxInt(4, s.S.TCRs/3))
		if err != nil {
			return nil, err
		}
		var feat time.Duration
		for _, f := range testFields {
			est, err := fw.EstimateConfig(f, 10)
			if err != nil {
				return nil, err
			}
			feat += est.FeatureTime
		}
		if stride == 4 {
			res.ErrSampled = avgErr(pts)
			res.FeatTimeSampled = feat
		} else {
			res.ErrFull = avgErr(pts)
			res.FeatTimeFull = feat
		}
	}
	if len(testFields) > 0 {
		f := testFields[0]
		res.SampledFraction = float64(len(grid.StrideSample(f, 4))) / float64(f.Size())
	}
	return res, nil
}

// String renders the ablation.
func (r *SamplingResult) String() string {
	t := &Table{Title: "§IV-E1 — uniform sampling ablation (Nyx, SZ)",
		Header: []string{"extraction", "avg est error", "feature time"}}
	t.AddRow("stride 4 (sampled)", pct(r.ErrSampled), r.FeatTimeSampled.String())
	t.AddRow("stride 1 (all points)", pct(r.ErrFull), r.FeatTimeFull.String())
	t.AddNote("sampled fraction: %.2f%% of points (paper: 1.50%%)", 100*r.SampledFraction)
	t.AddNote("paper: 8.24%% vs 6.23%% error; sampling ~20× faster feature extraction")
	return t.String()
}

// Table4Result reproduces Table IV: the λ threshold sweep for CA.
type Table4Result struct {
	// Err[app][compressor][λ] average estimation error.
	Err     map[string]map[string]map[float64]float64
	Lambdas []float64
}

// Table4Apps are the table's three applications.
var Table4Apps = []string{"nyx", "qmcpack", "rtm"}

// Table4 sweeps λ ∈ {0.05, 0.10, 0.15} per (app, SZ/ZFP).
func Table4(s *Session) (*Table4Result, error) {
	res := &Table4Result{Err: map[string]map[string]map[float64]float64{}, Lambdas: []float64{0.05, 0.10, 0.15}}
	for _, app := range Table4Apps {
		res.Err[app] = map[string]map[float64]float64{}
		trainFields, err := s.TrainFields(app)
		if err != nil {
			return nil, err
		}
		testFields, err := s.TestFields(app)
		if err != nil {
			return nil, err
		}
		for _, cname := range []string{"sz", "zfp"} {
			res.Err[app][cname] = map[float64]float64{}
			c, err := NewCompressor(cname)
			if err != nil {
				return nil, err
			}
			curves, err := s.Curves(app, cname)
			if err != nil {
				return nil, err
			}
			for _, lambda := range res.Lambdas {
				cfg := s.Config()
				cfg.Lambda = lambda
				fw, err := core.TrainWithCurves(c, trainFields, cfg, curves)
				if err != nil {
					return nil, err
				}
				pts, err := evalFramework(s, fw, c, testFields, maxInt(4, s.S.TCRs/3))
				if err != nil {
					return nil, err
				}
				res.Err[app][cname][lambda] = avgErr(pts)
			}
		}
	}
	return res, nil
}

// String renders Table IV.
func (r *Table4Result) String() string {
	hdr := []string{"app", "compressor"}
	for _, l := range r.Lambdas {
		hdr = append(hdr, fmt.Sprintf("λ=%.2f", l))
	}
	t := &Table{Title: "Table IV — average estimation error by CA threshold λ", Header: hdr}
	for _, app := range Table4Apps {
		for _, c := range []string{"sz", "zfp"} {
			row := []string{app, c}
			for _, l := range r.Lambdas {
				row = append(row, pct(r.Err[app][c][l]))
			}
			t.AddRow(row...)
		}
	}
	t.AddNote("paper: λ=0.15 optimal overall")
	return t.String()
}

// Fig7Result reproduces Fig 7: MCR-vs-TCR curves with and without CA on Nyx
// baryon density, for SZ and ZFP — with CA the curve hugs the ground truth.
type Fig7Result struct {
	// Points[compressor] rows of (TCR, MCR with CA, MCR without CA).
	Points map[string][][3]float64
	// AvgErrWith/AvgErrWithout summarise the curves.
	AvgErrWith, AvgErrWithout map[string]float64
}

// Fig7 runs both variants, reusing cached sweeps.
func Fig7(s *Session) (*Fig7Result, error) {
	app := "nyx"
	trainFields, err := s.TrainFields(app)
	if err != nil {
		return nil, err
	}
	test, err := datagen.NyxField("baryon_density", 2, s.S.NyxTestStep, s.S.NyxSize)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Points: map[string][][3]float64{}, AvgErrWith: map[string]float64{}, AvgErrWithout: map[string]float64{}}
	for _, cname := range []string{"sz", "zfp"} {
		c, err := NewCompressor(cname)
		if err != nil {
			return nil, err
		}
		curves, err := s.Curves(app, cname)
		if err != nil {
			return nil, err
		}
		cfgWith := s.Config()
		fwWith, err := core.TrainWithCurves(c, trainFields, cfgWith, curves)
		if err != nil {
			return nil, err
		}
		cfgWithout := s.Config()
		cfgWithout.UseCA = false
		fwWithout, err := core.TrainWithCurves(c, trainFields, cfgWithout, curves)
		if err != nil {
			return nil, err
		}
		targets, err := s.Targets(fwWith, cname, test, s.S.TCRs)
		if err != nil {
			return nil, err
		}
		for _, tcr := range targets {
			estW, err := fwWith.EstimateConfig(test, tcr)
			if err != nil {
				return nil, err
			}
			mcrW, err := compress.CompressRatio(c, test, estW.Knob)
			if err != nil {
				return nil, err
			}
			estWo, err := fwWithout.EstimateConfig(test, tcr)
			if err != nil {
				return nil, err
			}
			mcrWo, err := compress.CompressRatio(c, test, estWo.Knob)
			if err != nil {
				return nil, err
			}
			res.Points[cname] = append(res.Points[cname], [3]float64{tcr, mcrW, mcrWo})
			res.AvgErrWith[cname] += metrics.EstimationError(tcr, mcrW)
			res.AvgErrWithout[cname] += metrics.EstimationError(tcr, mcrWo)
		}
		n := float64(len(res.Points[cname]))
		res.AvgErrWith[cname] /= n
		res.AvgErrWithout[cname] /= n
	}
	return res, nil
}

// String renders Fig 7.
func (r *Fig7Result) String() string {
	out := ""
	for _, cname := range []string{"sz", "zfp"} {
		t := &Table{Title: fmt.Sprintf("Fig 7 — CA optimization (%s, Nyx baryon density)", cname),
			Header: []string{"TCR (ground truth)", "MCR with CA", "MCR without CA"}}
		for _, p := range r.Points[cname] {
			t.AddRow(f2(p[0]), f2(p[1]), f2(p[2]))
		}
		t.AddNote("avg error with CA: %s, without CA: %s", pct(r.AvgErrWith[cname]), pct(r.AvgErrWithout[cname]))
		out += t.String() + "\n"
	}
	return out
}

// Table7Result validates CA across all applications (§V-E): estimation error
// with and without the adjustment for SZ and ZFP.
type Table7Result struct {
	// Err[app][compressor][0] with CA, [1] without.
	Err map[string]map[string][2]float64
}

// Table7 runs the validation.
func Table7(s *Session) (*Table7Result, error) {
	res := &Table7Result{Err: map[string]map[string][2]float64{}}
	for _, app := range Apps {
		res.Err[app] = map[string][2]float64{}
		trainFields, err := s.TrainFields(app)
		if err != nil {
			return nil, err
		}
		testFields, err := s.TestFields(app)
		if err != nil {
			return nil, err
		}
		for _, cname := range []string{"sz", "zfp"} {
			c, err := NewCompressor(cname)
			if err != nil {
				return nil, err
			}
			curves, err := s.Curves(app, cname)
			if err != nil {
				return nil, err
			}
			var pair [2]float64
			for i, useCA := range []bool{true, false} {
				cfg := s.Config()
				cfg.UseCA = useCA
				fw, err := core.TrainWithCurves(c, trainFields, cfg, curves)
				if err != nil {
					return nil, err
				}
				pts, err := evalFramework(s, fw, c, testFields, maxInt(4, s.S.TCRs/3))
				if err != nil {
					return nil, err
				}
				pair[i] = avgErr(pts)
			}
			res.Err[app][cname] = pair
		}
	}
	return res, nil
}

// String renders the validation.
func (r *Table7Result) String() string {
	t := &Table{Title: "§V-E — estimation error with vs without Compressibility Adjustment",
		Header: []string{"app", "compressor", "with CA", "without CA"}}
	for _, app := range Apps {
		for _, c := range []string{"sz", "zfp"} {
			p := r.Err[app][c]
			t.AddRow(app, c, pct(p[0]), pct(p[1]))
		}
	}
	return t.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
