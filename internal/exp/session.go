// Package exp reproduces every table and figure of the paper's evaluation
// (§V). Each experiment is a function returning a structured, renderable
// result; cmd/expbench prints them and the root benchmark suite regenerates
// them under `go test -bench`. A Session caches generated datasets and
// trained frameworks so experiments sharing inputs do not repeat work.
package exp

import (
	"fmt"
	"sync"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/core"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/fpzip"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/mgard"
	"github.com/fxrz-go/fxrz/internal/pool"
	"github.com/fxrz-go/fxrz/internal/sz"
	"github.com/fxrz-go/fxrz/internal/zfp"
)

// Apps lists the four applications of Table V, in table order.
var Apps = []string{"nyx", "qmcpack", "rtm", "hurricane"}

// CompressorNames lists the four codecs in the order the paper's tables use.
var CompressorNames = []string{"sz", "zfp", "mgard", "fpzip"}

// NewCompressor builds a codec by table name.
func NewCompressor(name string) (compress.Compressor, error) {
	switch name {
	case "sz":
		return sz.New(), nil
	case "zfp":
		return zfp.New(), nil
	case "mgard":
		return mgard.New(), nil
	case "fpzip":
		return fpzip.New(), nil
	}
	return nil, fmt.Errorf("exp: unknown compressor %q", name)
}

// Scale sizes the experiment suite. The paper runs 512³ fields on a
// supercomputer; these presets keep the same structure at laptop scale.
type Scale struct {
	Name string
	// Base edge sizes per application (see datagen for the resulting dims).
	NyxSize, HurricaneSize, QMCSize, RTMSize int
	// Time-step splits (capability level 1 for Hurricane, §V-A2).
	NyxTrainSteps       []int
	NyxTestStep         int
	HurricaneTrainSteps []int
	HurricaneTestStep   int
	RTMTrainSteps       []int
	RTMTestSteps        []int
	// Framework knobs.
	Stationary      int
	AugmentPerField int
	Trees           int
	// TCRs is the number of target ratios evaluated per test field (the
	// paper uses ~25).
	TCRs int
	// FRaZIters are the baseline iteration caps (paper: 6 and 15).
	FRaZIters []int
	// Parallelism bounds the worker pool for sweeps and analysis (0 = all
	// cores, 1 = serial; see core.Config.Parallelism).
	Parallelism int
}

// Tiny is the bench/test preset: small enough for CI, large enough that
// every mechanism (CA, sampling, augmentation, search) is exercised.
var Tiny = Scale{
	Name:    "tiny",
	NyxSize: 20, HurricaneSize: 8, QMCSize: 12, RTMSize: 6,
	NyxTrainSteps:       []int{1, 3, 5},
	NyxTestStep:         2,
	HurricaneTrainSteps: []int{5, 10, 15, 20, 25, 30},
	HurricaneTestStep:   48,
	RTMTrainSteps:       []int{100, 130, 160, 190, 220, 250, 280},
	RTMTestSteps:        []int{170, 260},
	Stationary:          12,
	AugmentPerField:     80,
	Trees:               50,
	TCRs:                8,
	FRaZIters:           []int{6, 15},
}

// Small is the expbench default: close to the paper's methodology (25
// stationary points, 25 targets) on fields of a few hundred thousand cells.
var Small = Scale{
	Name:    "small",
	NyxSize: 48, HurricaneSize: 16, QMCSize: 20, RTMSize: 12,
	NyxTrainSteps:       []int{1, 2, 3, 4, 5, 6},
	NyxTestStep:         3,
	HurricaneTrainSteps: []int{5, 10, 15, 20, 25, 30},
	HurricaneTestStep:   48,
	RTMTrainSteps:       []int{100, 150, 200, 300, 400, 450, 500},
	RTMTestSteps:        []int{300, 500},
	Stationary:          25,
	AugmentPerField:     150,
	Trees:               100,
	TCRs:                25,
	FRaZIters:           []int{6, 15},
}

// Session caches datasets and default-config frameworks for one scale.
type Session struct {
	S Scale

	mu     sync.Mutex
	train  map[string][]*grid.Field
	test   map[string][]*grid.Field
	frames map[string]*core.Framework
	curves map[string]map[string]*core.Curve
}

// NewSession returns an empty cache for the scale.
func NewSession(s Scale) *Session {
	return &Session{
		S:      s,
		train:  map[string][]*grid.Field{},
		test:   map[string][]*grid.Field{},
		frames: map[string]*core.Framework{},
		curves: map[string]map[string]*core.Curve{},
	}
}

// Curves returns (and caches) the stationary-point curves of an
// application's training fields under one compressor — the expensive sweeps
// every training-based experiment shares.
func (s *Session) Curves(app, comp string) (map[string]*core.Curve, error) {
	key := app + "/" + comp
	s.mu.Lock()
	if cs, ok := s.curves[key]; ok {
		s.mu.Unlock()
		return cs, nil
	}
	s.mu.Unlock()

	fields, err := s.TrainFields(app)
	if err != nil {
		return nil, err
	}
	c, err := NewCompressor(comp)
	if err != nil {
		return nil, err
	}
	cfg := s.Config()
	cs := make(map[string]*core.Curve, len(fields))
	for _, f := range fields {
		knobs := core.SweepKnobs(c.Axis(), f, cfg.StationaryPoints, cfg.RelKnobMin, cfg.RelKnobMax)
		curve, err := core.BuildCurveParallel(c, f, knobs, pool.Workers(cfg.Parallelism))
		if err != nil {
			return nil, fmt.Errorf("exp: sweeping %s for %s: %w", f.Name, comp, err)
		}
		cs[f.Name] = curve
	}
	s.mu.Lock()
	s.curves[key] = cs
	s.mu.Unlock()
	return cs, nil
}

// Config returns the default framework configuration at this scale.
func (s *Session) Config() core.Config {
	cfg := core.DefaultConfig()
	cfg.StationaryPoints = s.S.Stationary
	cfg.AugmentPerField = s.S.AugmentPerField
	cfg.Trees = s.S.Trees
	cfg.Parallelism = s.S.Parallelism
	return cfg
}

// TrainFields returns (and caches) the training split of an application,
// mirroring §V-A2: Nyx config 1 across time steps, QMCPack configs 1–2, RTM
// small-scale snapshots, Hurricane early time steps.
func (s *Session) TrainFields(app string) ([]*grid.Field, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fs, ok := s.train[app]; ok {
		return append([]*grid.Field(nil), fs...), nil
	}
	fs, err := s.buildFields(app, true)
	if err != nil {
		return nil, err
	}
	s.train[app] = fs
	// Return a copy: callers appending to the result must not be able to
	// alias the cache's backing array.
	return append([]*grid.Field(nil), fs...), nil
}

// TestFields returns (and caches) the test split: Nyx config 2, QMCPack
// config 3, RTM big-scale, Hurricane time step 48.
func (s *Session) TestFields(app string) ([]*grid.Field, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fs, ok := s.test[app]; ok {
		return append([]*grid.Field(nil), fs...), nil
	}
	fs, err := s.buildFields(app, false)
	if err != nil {
		return nil, err
	}
	s.test[app] = fs
	return append([]*grid.Field(nil), fs...), nil
}

func (s *Session) buildFields(app string, train bool) ([]*grid.Field, error) {
	var out []*grid.Field
	switch app {
	case "nyx":
		if train {
			for _, field := range datagen.NyxFields {
				for _, ts := range s.S.NyxTrainSteps {
					f, err := datagen.NyxField(field, 1, ts, s.S.NyxSize)
					if err != nil {
						return nil, err
					}
					out = append(out, f)
				}
			}
		} else {
			for _, field := range datagen.NyxFields {
				f, err := datagen.NyxField(field, 2, s.S.NyxTestStep, s.S.NyxSize)
				if err != nil {
					return nil, err
				}
				out = append(out, f)
			}
		}
	case "qmcpack":
		if train {
			for _, cfg := range []int{1, 2} {
				for _, spin := range []int{0, 1} {
					f, err := datagen.QMCPackField(cfg, spin, s.S.QMCSize)
					if err != nil {
						return nil, err
					}
					out = append(out, f)
				}
			}
		} else {
			for _, spin := range []int{0, 1} {
				f, err := datagen.QMCPackField(3, spin, s.S.QMCSize)
				if err != nil {
					return nil, err
				}
				out = append(out, f)
			}
		}
	case "rtm":
		if train {
			return datagen.RTMSnapshots("small", s.S.RTMTrainSteps, s.S.RTMSize)
		}
		return datagen.RTMSnapshots("big", s.S.RTMTestSteps, s.S.RTMSize)
	case "hurricane":
		steps := s.S.HurricaneTrainSteps
		if !train {
			steps = []int{s.S.HurricaneTestStep}
		}
		for _, field := range datagen.HurricaneFields {
			for _, ts := range steps {
				f, err := datagen.HurricaneField(field, ts, s.S.HurricaneSize)
				if err != nil {
					return nil, err
				}
				out = append(out, f)
			}
		}
	default:
		return nil, fmt.Errorf("exp: unknown app %q", app)
	}
	return out, nil
}

// Framework returns (and caches) the default-config framework for an
// (application, compressor) pair. Experiments that vary the configuration
// (λ sweep, CA off, model selection, stride ablation) train their own.
func (s *Session) Framework(app, comp string) (*core.Framework, error) {
	key := app + "/" + comp
	s.mu.Lock()
	if fw, ok := s.frames[key]; ok {
		s.mu.Unlock()
		return fw, nil
	}
	s.mu.Unlock()

	fields, err := s.TrainFields(app)
	if err != nil {
		return nil, err
	}
	c, err := NewCompressor(comp)
	if err != nil {
		return nil, err
	}
	curves, err := s.Curves(app, comp)
	if err != nil {
		return nil, err
	}
	fw, err := core.TrainWithCurves(c, fields, s.Config(), curves)
	if err != nil {
		return nil, fmt.Errorf("exp: training %s: %w", key, err)
	}
	s.mu.Lock()
	s.frames[key] = fw
	s.mu.Unlock()
	return fw, nil
}

// TestCurve returns (and caches) the ground-truth knob↔ratio curve of one
// *test* field — experiment setup only, used to pick valid target ranges the
// way the paper does per dataset (§V-C, Fig 11). FXRZ itself never sees it.
func (s *Session) TestCurve(comp string, f *grid.Field) (*core.Curve, error) {
	key := "test/" + comp + "/" + f.Name
	s.mu.Lock()
	if cs, ok := s.curves[key]; ok {
		s.mu.Unlock()
		return cs[f.Name], nil
	}
	s.mu.Unlock()
	c, err := NewCompressor(comp)
	if err != nil {
		return nil, err
	}
	cfg := s.Config()
	knobs := core.SweepKnobs(c.Axis(), f, cfg.StationaryPoints, cfg.RelKnobMin, cfg.RelKnobMax)
	curve, err := core.BuildCurveParallel(c, f, knobs, pool.Workers(cfg.Parallelism))
	if err != nil {
		return nil, fmt.Errorf("exp: ground-truth sweep of %s for %s: %w", f.Name, comp, err)
	}
	s.mu.Lock()
	s.curves[key] = map[string]*core.Curve{f.Name: curve}
	s.mu.Unlock()
	return curve, nil
}

// Targets returns n target ratios for a test field, uniformly covering the
// intersection of the framework's valid range with the field's ground-truth
// achievable range, trimmed 10% at each end — the paper's "25 different
// values uniformly ... all reasonable/applicable" (§V-F1), where
// reasonableness is likewise established per dataset by the experimenters.
func (s *Session) Targets(fw *core.Framework, comp string, f *grid.Field, n int) ([]float64, error) {
	lo, hi := fw.ValidRatioRange(f)
	gt, err := s.TestCurve(comp, f)
	if err != nil {
		return nil, err
	}
	c, err := NewCompressor(comp)
	if err != nil {
		return nil, err
	}
	if c.Axis().Kind == compress.Precision {
		// Integer-precision codecs (FPZIP) have stairwise ratio curves:
		// ratios between two consecutive precisions are unrealisable by any
		// method (the paper makes the same point for ZFP's stairs, §V-F1,
		// and tunes "reasonable settings ... across compressors"). Targets
		// are therefore drawn from the achievable stationary ratios.
		var achievable []float64
		for _, p := range gt.Points() {
			if p.Ratio >= lo && p.Ratio <= hi {
				achievable = append(achievable, p.Ratio)
			}
		}
		if len(achievable) == 0 {
			mid := (lo + hi) / 2
			return []float64{mid}, nil
		}
		if len(achievable) <= n {
			return achievable, nil
		}
		out := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, achievable[i*(len(achievable)-1)/(n-1)])
		}
		return out, nil
	}
	glo, ghi := gt.RatioRange()
	if glo > lo {
		lo = glo
	}
	if ghi < hi {
		hi = ghi
	}
	span := hi - lo
	lo, hi = lo+0.10*span, hi-0.10*span
	if n < 2 || !(hi > lo) {
		return []float64{(lo + hi) / 2}, nil
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, lo+(hi-lo)*float64(i)/float64(n-1))
	}
	return out, nil
}
