package exp

import (
	"fmt"
	"math"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/core"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/ml"
)

// Fig2Result reproduces Fig 2: stationary (error bound, ratio) points with
// interpolated curves for SZ and ZFP on Nyx baryon density, plus the §IV-B
// leave-one-out interpolation error for all four compressors (paper: 3.04%,
// 3.96%, 5.48%, 4.34% for SZ, ZFP, FPZIP, MGARD+).
type Fig2Result struct {
	Curves       map[string][]core.Stationary
	InterpErrors map[string]float64
}

// Fig2 runs the experiment.
func Fig2(s *Session) (*Fig2Result, error) {
	f, err := datagen.NyxField("baryon_density", 1, 1, s.S.NyxSize)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{Curves: map[string][]core.Stationary{}, InterpErrors: map[string]float64{}}
	cfg := s.Config()
	for _, name := range CompressorNames {
		c, err := NewCompressor(name)
		if err != nil {
			return nil, err
		}
		knobs := core.SweepKnobs(c.Axis(), f, cfg.StationaryPoints, cfg.RelKnobMin, cfg.RelKnobMax)
		curve, err := core.BuildCurve(c, f, knobs)
		if err != nil {
			return nil, err
		}
		res.Curves[name] = curve.Points()
		ie, err := core.InterpolationError(c, f, knobs)
		if err != nil {
			return nil, err
		}
		res.InterpErrors[name] = ie
	}
	return res, nil
}

// String renders the figure as tables.
func (r *Fig2Result) String() string {
	out := ""
	for _, name := range CompressorNames {
		t := &Table{Title: fmt.Sprintf("Fig 2 — stationary points and interpolated curve (%s, Nyx baryon density)", name),
			Header: []string{"knob", "ratio"}}
		for _, p := range r.Curves[name] {
			t.AddRow(f4(p.Knob), f2(p.Ratio))
		}
		t.AddNote("leave-one-out interpolation error: %s (paper reports 3–5.5%% per compressor)", pct(r.InterpErrors[name]))
		out += t.String() + "\n"
	}
	return out
}

// fig3Dataset names the five datasets Fig 3 / Table I use.
type fig3Dataset struct {
	label string
	field *grid.Field
}

func fig3Datasets(s *Session) ([]fig3Dataset, error) {
	nyx, err := datagen.NyxField("baryon_density", 1, 1, s.S.NyxSize)
	if err != nil {
		return nil, err
	}
	qmc, err := datagen.QMCPackField(3, 0, s.S.QMCSize)
	if err != nil {
		return nil, err
	}
	rtmBig, err := datagen.RTMSnapshots("big", []int{s.S.RTMTestSteps[len(s.S.RTMTestSteps)-1]}, s.S.RTMSize)
	if err != nil {
		return nil, err
	}
	rtmSmall, err := datagen.RTMSnapshots("small", []int{s.S.RTMTrainSteps[len(s.S.RTMTrainSteps)-1]}, s.S.RTMSize)
	if err != nil {
		return nil, err
	}
	hur, err := datagen.HurricaneField("TC", 10, s.S.HurricaneSize)
	if err != nil {
		return nil, err
	}
	return []fig3Dataset{
		{"Nyx Baryon Density", nyx},
		{"QMCPack BigScale", qmc},
		{"RTM BigScale", rtmBig[0]},
		{"RTM SmallScale", rtmSmall[0]},
		{"Hurricane TC", hur},
	}, nil
}

// Fig3Table1Result reproduces Fig 3 (ratios across datasets and compressors
// at one bound) and Table I (feature values across the same datasets).
type Fig3Table1Result struct {
	Labels   []string
	Ratios   map[string][]float64 // compressor → per-dataset ratio
	Features []core.Features
}

// Fig3Table1 runs both: the bound is 1e-3 of each dataset's value range for
// the error-bound codecs (the paper's single absolute bound spans datasets
// with 5-orders-of-magnitude ranges only because its datasets are
// pre-normalised; the relative bound preserves the comparison) and precision
// 16 for FPZIP.
func Fig3Table1(s *Session) (*Fig3Table1Result, error) {
	ds, err := fig3Datasets(s)
	if err != nil {
		return nil, err
	}
	res := &Fig3Table1Result{Ratios: map[string][]float64{}}
	for _, d := range ds {
		res.Labels = append(res.Labels, d.label)
		res.Features = append(res.Features, core.ExtractFeatures(d.field, 1))
	}
	for _, name := range CompressorNames {
		c, err := NewCompressor(name)
		if err != nil {
			return nil, err
		}
		for _, d := range ds {
			knob := 16.0
			if c.Axis().Kind == compress.AbsErrorBound {
				knob = 1e-3 * d.field.ValueRange()
				if knob <= 0 {
					knob = 1e-6
				}
			}
			r, err := compress.CompressRatio(c, d.field, knob)
			if err != nil {
				return nil, fmt.Errorf("exp: fig3 %s on %s: %w", name, d.label, err)
			}
			res.Ratios[name] = append(res.Ratios[name], r)
		}
	}
	return res, nil
}

// String renders Fig 3 and Table I.
func (r *Fig3Table1Result) String() string {
	t := &Table{Title: "Fig 3 — compression ratios across datasets and compressors (bound = 1e-3·range; fpzip precision 16)",
		Header: append([]string{"dataset"}, CompressorNames...)}
	for i, lbl := range r.Labels {
		row := []string{lbl}
		for _, c := range CompressorNames {
			row = append(row, f2(r.Ratios[c][i]))
		}
		t.AddRow(row...)
	}
	t2 := &Table{Title: "Table I — feature values across datasets",
		Header: []string{"feature"},
	}
	t2.Header = append(t2.Header, r.Labels...)
	for fi, fname := range core.FeatureNames[:5] {
		row := []string{fname}
		for _, ft := range r.Features {
			row = append(row, f4(ft.FullVector()[fi]))
		}
		t2.AddRow(row...)
	}
	t2.AddNote("paper's signature: RTM has the smallest range/MND/MLD/MSD and the highest ratios")
	return t.String() + "\n" + t2.String()
}

// Table2Result reproduces Table II: per-compressor average |Pearson|
// correlation between each of the 8 features and the compression ratio,
// across applications and error bounds. The gradient features must come out
// weakest (the paper's reason to exclude them).
type Table2Result struct {
	// Corr[compressor][featureIndex] is the average |r|.
	Corr map[string][]float64
}

// Table2 computes the correlations: for each (application, bound), the
// correlation across the app's snapshots between feature value and measured
// ratio, averaged over apps and bounds.
func Table2(s *Session) (*Table2Result, error) {
	res := &Table2Result{Corr: map[string][]float64{}}
	relBounds := []float64{1e-4, 1e-3, 1e-2, 1e-1}
	precisions := []float64{12, 16, 20, 24}

	for _, cname := range CompressorNames {
		c, err := NewCompressor(cname)
		if err != nil {
			return nil, err
		}
		sums := make([]float64, 8)
		n := 0
		for _, app := range Apps {
			fields, err := s.TrainFields(app)
			if err != nil {
				return nil, err
			}
			if len(fields) < 3 {
				continue
			}
			// Feature matrix across the app's snapshots.
			feats := make([][]float64, len(fields))
			for i, f := range fields {
				feats[i] = core.ExtractFeatures(f, s.Config().Stride).FullVector()
			}
			knobsFor := func(f *grid.Field, rel float64) float64 {
				vr := f.ValueRange()
				if vr <= 0 {
					vr = 1
				}
				return rel * vr
			}
			settings := relBounds
			if c.Axis().Kind == compress.Precision {
				settings = precisions
			}
			for _, setting := range settings {
				ratios := make([]float64, len(fields))
				for i, f := range fields {
					knob := setting
					if c.Axis().Kind == compress.AbsErrorBound {
						knob = knobsFor(f, setting)
					}
					r, err := compress.CompressRatio(c, f, knob)
					if err != nil {
						return nil, err
					}
					ratios[i] = r
				}
				for fi := 0; fi < 8; fi++ {
					col := make([]float64, len(fields))
					for i := range fields {
						col[i] = feats[i][fi]
					}
					sums[fi] += math.Abs(ml.Pearson(col, ratios))
				}
				n++
			}
		}
		corr := make([]float64, 8)
		for i := range corr {
			if n > 0 {
				corr[i] = sums[i] / float64(n)
			}
		}
		res.Corr[cname] = corr
	}
	return res, nil
}

// AdoptedBeatGradients reports whether the paper's feature selection
// conclusion holds: the mean correlation of the five adopted features
// exceeds that of the three gradient features for the compressor.
func (r *Table2Result) AdoptedBeatGradients(compressor string) bool {
	c := r.Corr[compressor]
	if len(c) != 8 {
		return false
	}
	adopted := (c[0] + c[1] + c[2] + c[3] + c[4]) / 5
	grads := (c[5] + c[6] + c[7]) / 3
	return adopted > grads
}

// String renders Table II.
func (r *Table2Result) String() string {
	t := &Table{Title: "Table II — average |Pearson| correlation between features and compression ratio",
		Header: append([]string{"compressor"}, core.FeatureNames...)}
	for _, c := range CompressorNames {
		row := []string{c}
		for _, v := range r.Corr[c] {
			row = append(row, f2(v))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: adopted features (first five) correlate ~0.6–0.8; gradient features weakest")
	return t.String()
}
