package exp

import (
	"fmt"
	"strings"
)

// Table is a minimal text-table renderer for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a caption line under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f2, f4 and pct format numeric cells consistently across experiments.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4g", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
