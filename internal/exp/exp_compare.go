package exp

import (
	"fmt"
	"time"

	"github.com/fxrz-go/fxrz/internal/core"
	"github.com/fxrz-go/fxrz/internal/dump"
	"github.com/fxrz-go/fxrz/internal/fraz"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/metrics"
)

// FRaZPoint is one baseline measurement.
type FRaZPoint struct {
	Field    string
	TCR      float64
	Achieved float64
	Err      float64
	Runs     int
	Search   time.Duration
}

// CompareResult holds the FXRZ-vs-FRaZ data behind Figs 12–13 and Table
// VIII: per (compressor, app) accuracy points for FXRZ and for FRaZ at each
// iteration cap, plus single-compression baseline times.
type CompareResult struct {
	Iters        []int
	FXRZ         map[string]map[string][]EvalPoint // comp → app
	FRaZ         map[int]map[string]map[string][]FRaZPoint
	CompressTime map[string]map[string]time.Duration // comp → app: mean one-shot compression
}

// Compare evaluates FXRZ and FRaZ on every (app, compressor) pair. To bound
// the baseline's enormous cost, at most maxTestFields per app are used (the
// paper likewise reports one test field/snapshot per app in Fig 12).
func Compare(s *Session, apps, comps []string, maxTestFields int) (*CompareResult, error) {
	res := &CompareResult{
		Iters:        s.S.FRaZIters,
		FXRZ:         map[string]map[string][]EvalPoint{},
		FRaZ:         map[int]map[string]map[string][]FRaZPoint{},
		CompressTime: map[string]map[string]time.Duration{},
	}
	for _, it := range res.Iters {
		res.FRaZ[it] = map[string]map[string][]FRaZPoint{}
	}
	for _, cname := range comps {
		res.FXRZ[cname] = map[string][]EvalPoint{}
		res.CompressTime[cname] = map[string]time.Duration{}
		for _, it := range res.Iters {
			res.FRaZ[it][cname] = map[string][]FRaZPoint{}
		}
		c, err := NewCompressor(cname)
		if err != nil {
			return nil, err
		}
		for _, app := range apps {
			fw, err := s.Framework(app, cname)
			if err != nil {
				return nil, err
			}
			tests, err := s.TestFields(app)
			if err != nil {
				return nil, err
			}
			if len(tests) > maxTestFields {
				tests = tests[:maxTestFields]
			}
			// Baseline single-compression time at a mid-range setting.
			var compTime time.Duration
			for _, f := range tests {
				mids, err := s.Targets(fw, cname, f, 3)
				if err != nil {
					return nil, err
				}
				mid := mids[len(mids)/2]
				est, err := fw.EstimateConfig(f, mid)
				if err != nil {
					return nil, err
				}
				t0 := time.Now()
				if _, err := c.Compress(f, est.Knob); err != nil {
					return nil, err
				}
				compTime += time.Since(t0)
			}
			res.CompressTime[cname][app] = compTime / time.Duration(len(tests))

			pts, err := evalFramework(s, fw, c, tests, s.S.TCRs)
			if err != nil {
				return nil, err
			}
			res.FXRZ[cname][app] = pts

			for _, iters := range res.Iters {
				cfg := fraz.DefaultConfig(iters)
				var fps []FRaZPoint
				for _, f := range tests {
					targets, err := s.Targets(fw, cname, f, s.S.TCRs)
					if err != nil {
						return nil, err
					}
					for _, tcr := range targets {
						r, err := fraz.Search(c, f, tcr, cfg)
						if err != nil {
							return nil, fmt.Errorf("exp: fraz(%d) %s on %s: %w", iters, cname, f.Name, err)
						}
						fps = append(fps, FRaZPoint{
							Field: f.Name, TCR: tcr, Achieved: r.AchievedRatio,
							Err:  metrics.EstimationError(tcr, r.AchievedRatio),
							Runs: r.CompressorRuns, Search: r.SearchTime,
						})
					}
				}
				res.FRaZ[iters][cname][app] = fps
			}
		}
	}
	return res, nil
}

// Averages returns the grand-average estimation errors: FXRZ and FRaZ per
// iteration cap (paper: FXRZ 8.24%, FRaZ6 34.48%, FRaZ15 19.37%).
func (r *CompareResult) Averages() (fxrzErr float64, frazErr map[int]float64) {
	var s float64
	var n int
	for _, byApp := range r.FXRZ {
		for _, pts := range byApp {
			for _, p := range pts {
				s += p.Err
				n++
			}
		}
	}
	if n > 0 {
		fxrzErr = s / float64(n)
	}
	frazErr = map[int]float64{}
	for it, byComp := range r.FRaZ {
		var fs float64
		var fn int
		for _, byApp := range byComp {
			for _, pts := range byApp {
				for _, p := range pts {
					fs += p.Err
					fn++
				}
			}
		}
		if fn > 0 {
			frazErr[it] = fs / float64(fn)
		}
	}
	return fxrzErr, frazErr
}

// SpeedupOverFRaZ returns mean(FRaZ search time) / mean(FXRZ analysis time)
// at the given iteration cap — the paper's headline 108×.
func (r *CompareResult) SpeedupOverFRaZ(iters int) float64 {
	var fxrzT, frazT time.Duration
	var fn, gn int
	for _, byApp := range r.FXRZ {
		for _, pts := range byApp {
			for _, p := range pts {
				fxrzT += p.Analysis
				fn++
			}
		}
	}
	for _, byApp := range r.FRaZ[iters] {
		for _, pts := range byApp {
			for _, p := range pts {
				frazT += p.Search
				gn++
			}
		}
	}
	if fn == 0 || gn == 0 || fxrzT == 0 {
		return 0
	}
	return (float64(frazT) / float64(gn)) / (float64(fxrzT) / float64(fn))
}

// CapabilityString splits the FXRZ accuracy by the paper's two capability
// levels (§IV-A): level 1 = same simulation configuration, later time steps
// (Hurricane); level 2 = different simulation configuration or scale (Nyx,
// QMCPack, RTM).
func (r *CompareResult) CapabilityString() string {
	level := func(apps []string) (float64, int) {
		var s float64
		var n int
		for _, byApp := range r.FXRZ {
			for _, app := range apps {
				for _, p := range byApp[app] {
					s += p.Err
					n++
				}
			}
		}
		if n == 0 {
			return 0, 0
		}
		return s / float64(n), n
	}
	l1, n1 := level([]string{"hurricane"})
	l2, n2 := level([]string{"nyx", "qmcpack", "rtm"})
	t := &Table{Title: "Capability levels (§IV-A) — FXRZ estimation error by train/test relationship",
		Header: []string{"level", "split", "avg est error", "points"}}
	t.AddRow("1", "same config, later time steps (Hurricane)", pct(l1), fmt.Sprintf("%d", n1))
	t.AddRow("2", "different config/scale (Nyx, QMCPack, RTM)", pct(l2), fmt.Sprintf("%d", n2))
	return t.String()
}

// Fig12String renders the MCR-vs-TCR curves for one test field per app.
func (r *CompareResult) Fig12String() string {
	out := ""
	for _, cname := range []string{"sz", "zfp"} {
		byApp, ok := r.FXRZ[cname]
		if !ok {
			continue
		}
		for _, app := range Apps {
			pts := byApp[app]
			if len(pts) == 0 {
				continue
			}
			t := &Table{Title: fmt.Sprintf("Fig 12 — accuracy curves (%s, %s)", cname, app),
				Header: []string{"TCR (ground truth)", "FXRZ MCR", "FRaZ-6 MCR", "FRaZ-15 MCR"}}
			f6 := indexFRaZ(r.FRaZ[6][cname][app])
			f15 := indexFRaZ(r.FRaZ[15][cname][app])
			field := pts[0].Field
			for _, p := range pts {
				if p.Field != field {
					break // one field per app, like the paper's figure
				}
				key := frazKey(p.Field, p.TCR)
				t.AddRow(f2(p.TCR), f2(p.MCR), f2(f6[key]), f2(f15[key]))
			}
			out += t.String() + "\n"
		}
	}
	return out
}

// Fig13String renders per-(app, compressor) average estimation errors.
func (r *CompareResult) Fig13String() string {
	t := &Table{Title: "Fig 13 — average estimation error per test dataset",
		Header: []string{"app", "compressor", "FXRZ", "FRaZ-6", "FRaZ-15"}}
	for _, app := range Apps {
		for _, cname := range CompressorNames {
			pts := r.FXRZ[cname][app]
			if len(pts) == 0 {
				continue
			}
			t.AddRow(app, cname, pct(avgErr(pts)),
				pct(avgFRaZErr(r.FRaZ[6][cname][app])),
				pct(avgFRaZErr(r.FRaZ[15][cname][app])))
		}
	}
	fx, fr := r.Averages()
	t.AddNote("grand averages: FXRZ %s, FRaZ-6 %s, FRaZ-15 %s (paper: 8.24%%, 34.48%%, 19.37%%)",
		pct(fx), pct(fr[6]), pct(fr[15]))
	return t.String()
}

// Table8String renders the analysis-time-cost comparison.
func (r *CompareResult) Table8String() string {
	t := &Table{Title: "Table VIII — analysis time relative to compression time (FXRZ vs FRaZ-15)",
		Header: []string{"app", "compressor", "compress time", "FXRZ analysis ×", "FRaZ-15 search ×"}}
	for _, app := range Apps {
		for _, cname := range CompressorNames {
			pts := r.FXRZ[cname][app]
			fps := r.FRaZ[15][cname][app]
			if len(pts) == 0 || len(fps) == 0 {
				continue
			}
			ct := r.CompressTime[cname][app]
			var fxrzT time.Duration
			for _, p := range pts {
				fxrzT += p.Analysis
			}
			fxrzT /= time.Duration(len(pts))
			var frazT time.Duration
			for _, p := range fps {
				frazT += p.Search
			}
			frazT /= time.Duration(len(fps))
			t.AddRow(app, cname, ct.Round(time.Microsecond).String(),
				fmt.Sprintf("%.3f", float64(fxrzT)/float64(ct)),
				fmt.Sprintf("%.2f", float64(frazT)/float64(ct)))
		}
	}
	t.AddNote("FXRZ speedup over FRaZ-15: %.0f× (paper: 108×; FXRZ analysis ≈ 0.14× compression)", r.SpeedupOverFRaZ(15))
	return t.String()
}

func frazKey(field string, tcr float64) string { return fmt.Sprintf("%s|%.6g", field, tcr) }

func indexFRaZ(pts []FRaZPoint) map[string]float64 {
	m := make(map[string]float64, len(pts))
	for _, p := range pts {
		m[frazKey(p.Field, p.TCR)] = p.Achieved
	}
	return m
}

func avgFRaZErr(pts []FRaZPoint) float64 {
	if len(pts) == 0 {
		return 0
	}
	var s float64
	for _, p := range pts {
		s += p.Err
	}
	return s / float64(len(pts))
}

// Fig14Result reproduces Fig 14: training across all application scopes,
// testing on RTM BigScale (paper: FXRZ keeps 6.76–19.81% error).
type Fig14Result struct {
	// Err[compressor] = [FXRZ, FRaZ-15].
	Err map[string][2]float64
}

// Fig14 trains a cross-scope pool and tests on RTM big-scale snapshots.
func Fig14(s *Session) (*Fig14Result, error) {
	var pool []*grid.Field
	for _, app := range Apps {
		fs, err := s.TrainFields(app)
		if err != nil {
			return nil, err
		}
		pool = append(pool, fs...)
	}
	tests, err := s.TestFields("rtm")
	if err != nil {
		return nil, err
	}
	res := &Fig14Result{Err: map[string][2]float64{}}
	for _, cname := range CompressorNames {
		c, err := NewCompressor(cname)
		if err != nil {
			return nil, err
		}
		// Merge the per-app sweep caches so the pooled training reuses them.
		curves := map[string]*core.Curve{}
		for _, app := range Apps {
			cs, err := s.Curves(app, cname)
			if err != nil {
				return nil, err
			}
			for k, v := range cs {
				curves[k] = v
			}
		}
		fw, err := core.TrainWithCurves(c, pool, s.Config(), curves)
		if err != nil {
			return nil, err
		}
		pts, err := evalFramework(s, fw, c, tests, maxInt(4, s.S.TCRs/3))
		if err != nil {
			return nil, err
		}
		var frazSum float64
		var frazN int
		cfg := fraz.DefaultConfig(15)
		for _, f := range tests {
			targets, terr := s.Targets(fw, cname, f, maxInt(4, s.S.TCRs/3))
			if terr != nil {
				return nil, terr
			}
			for _, tcr := range targets {
				r, err := fraz.Search(c, f, tcr, cfg)
				if err != nil {
					return nil, err
				}
				frazSum += metrics.EstimationError(tcr, r.AchievedRatio)
				frazN++
			}
		}
		res.Err[cname] = [2]float64{avgErr(pts), frazSum / float64(frazN)}
	}
	return res, nil
}

// String renders Fig 14.
func (r *Fig14Result) String() string {
	t := &Table{Title: "Fig 14 — cross-application-scope training, tested on RTM BigScale",
		Header: []string{"compressor", "FXRZ", "FRaZ-15"}}
	for _, c := range CompressorNames {
		p := r.Err[c]
		t.AddRow(c, pct(p[0]), pct(p[1]))
	}
	t.AddNote("paper: FXRZ 11.49/6.76/13.66/19.81%% vs FRaZ 17.85/35.51/14.31/10.11%% (sz/zfp/mgard/fpzip)")
	return t.String()
}

// DumpResult reproduces the parallel data-dumping experiment: end-to-end
// makespan of FXRZ vs FRaZ-driven dumping across rank counts (paper:
// 1.18–8.71× gain up to 4096 cores).
type DumpResult struct {
	Ranks []int
	// Rows[i] = {fxrz makespan, fraz makespan, gain} per rank count.
	Rows [][3]float64
	// Measured single-rank inputs.
	Analysis, FRaZSearch, Compress time.Duration
	Bytes                          int64
}

// Dump measures real per-rank costs on a Nyx test field with SZ, then runs
// the discrete-event I/O model at each rank count.
func Dump(s *Session) (*DumpResult, error) {
	fw, err := s.Framework("nyx", "sz")
	if err != nil {
		return nil, err
	}
	tests, err := s.TestFields("nyx")
	if err != nil {
		return nil, err
	}
	f := tests[0]
	c, err := NewCompressor("sz")
	if err != nil {
		return nil, err
	}
	mids, err := s.Targets(fw, "sz", f, 3)
	if err != nil {
		return nil, err
	}
	tcr := mids[len(mids)/2]
	est, err := fw.EstimateConfig(f, tcr)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	blob, err := c.Compress(f, est.Knob)
	if err != nil {
		return nil, err
	}
	compTime := time.Since(t0)
	fr, err := fraz.Search(c, f, tcr, fraz.DefaultConfig(15))
	if err != nil {
		return nil, err
	}

	// Extrapolate the measured per-point costs to the paper's per-rank
	// volume (one 512³ field per rank): analysis, search, compression and
	// output size all grow linearly in the point count, while the I/O
	// bandwidth stays fixed — which is what makes I/O contention matter at
	// 4096 ranks and keeps the gain in the paper's 1.18–8.71× regime rather
	// than the pure compute ratio.
	volume := float64(512*512*512) / float64(f.Size())
	scale := func(d time.Duration) time.Duration { return time.Duration(float64(d) * volume) }
	res := &DumpResult{
		Ranks:    []int{512, 1024, 2048, 4096},
		Analysis: scale(est.AnalysisTime()), FRaZSearch: scale(fr.SearchTime),
		Compress: scale(compTime), Bytes: int64(float64(len(blob)) * volume),
	}
	// Calibrate the I/O model: the gain regime depends on the balance
	// between per-rank compute and shared I/O. The paper's testbed pairs
	// C-implementation SZ (~200 MB/s/core) with a 2 GB/s file system; our
	// pure-Go codec is slower per point, so the simulated bandwidth is
	// scaled by the measured-throughput ratio to keep the same balance.
	const cSZThroughput = 200e6 // bytes/s, SZ 2.x single core on Broadwell
	ourThroughput := float64(f.Bytes()) / compTime.Seconds()
	balance := ourThroughput / cSZThroughput
	if balance > 1 {
		balance = 1
	}
	io := dump.DefaultIO()
	io.Bandwidth *= balance
	for _, n := range res.Ranks {
		fxrzRes, err := dump.Simulate(dump.Uniform(n, dump.RankTask{
			AnalysisTime: res.Analysis, CompressTime: res.Compress, Bytes: res.Bytes,
		}), io)
		if err != nil {
			return nil, err
		}
		frazRes, err := dump.Simulate(dump.Uniform(n, dump.RankTask{
			AnalysisTime: res.FRaZSearch, CompressTime: res.Compress, Bytes: res.Bytes,
		}), io)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, [3]float64{
			fxrzRes.Makespan.Seconds(), frazRes.Makespan.Seconds(), dump.Gain(fxrzRes, frazRes),
		})
	}
	return res, nil
}

// String renders the dumping experiment.
func (r *DumpResult) String() string {
	t := &Table{Title: "Parallel data dumping — FXRZ vs FRaZ-15 (discrete-event model, measured single-rank costs)",
		Header: []string{"ranks", "FXRZ makespan (s)", "FRaZ makespan (s)", "gain"}}
	for i, n := range r.Ranks {
		t.AddRow(fmt.Sprintf("%d", n), f4(r.Rows[i][0]), f4(r.Rows[i][1]), fmt.Sprintf("%.2f×", r.Rows[i][2]))
	}
	t.AddNote("measured per rank: analysis %v (FXRZ) vs %v (FRaZ search), compression %v, %d bytes",
		r.Analysis.Round(time.Microsecond), r.FRaZSearch.Round(time.Microsecond), r.Compress.Round(time.Microsecond), r.Bytes)
	t.AddNote("paper: 1.18–8.71× overall gain on Bebop up to 4096 cores")
	return t.String()
}
