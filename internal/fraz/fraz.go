// Package fraz implements the FRaZ baseline (Underwood et al., IPDPS 2020),
// the only prior generic fixed-ratio lossy compression framework. FRaZ
// searches for the error-bound setting that reaches a target compression
// ratio by *actually running the compressor* at each probed setting — a
// trial-and-error loop whose cost is one full compression per iteration.
// That cost (10–100× the compression time) is exactly what FXRZ eliminates,
// and what every FXRZ-vs-FRaZ comparison in the evaluation measures.
//
// Faithfully to the paper's configuration (§V-A4): the global knob range is
// divided into `Bins` sub-ranges (k=3), each searched with a bounded
// iterative bisection of at most `MaxIters` iterations (6 or 15 in the
// evaluation), and the best setting found across bins is returned.
package fraz

import (
	"fmt"
	"math"
	"time"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/grid"
)

// Config controls the FRaZ search.
type Config struct {
	// Bins is the number of sub-ranges the knob domain is split into
	// (paper: 3).
	Bins int
	// MaxIters bounds the iterations per bin (paper: 6 and 15).
	MaxIters int
	// RelKnobMin/RelKnobMax bound the global error-bound search range
	// relative to the field's value range, kept identical to FXRZ's training
	// sweep for fairness (as the paper does).
	RelKnobMin, RelKnobMax float64
	// Tolerance stops a bin early when |ratio - target|/target falls below
	// it (default 0.01).
	Tolerance float64
}

// DefaultConfig returns the paper's FRaZ setup with the given iteration cap.
func DefaultConfig(maxIters int) Config {
	return Config{Bins: 3, MaxIters: maxIters, RelKnobMin: 1e-6, RelKnobMax: 0.25, Tolerance: 0.01}
}

// Result reports the outcome of one FRaZ search.
type Result struct {
	// Knob is the best setting found.
	Knob float64
	// AchievedRatio is the measured ratio at Knob.
	AchievedRatio float64
	// CompressorRuns counts how many full compressions the search spent —
	// the cost metric of Table VIII.
	CompressorRuns int
	// SearchTime is the wall-clock analysis time.
	SearchTime time.Duration
}

// Search runs FRaZ for one field and target ratio.
func Search(c compress.Compressor, f *grid.Field, targetRatio float64, cfg Config) (Result, error) {
	if !(targetRatio > 0) || math.IsInf(targetRatio, 0) {
		return Result{}, fmt.Errorf("fraz: target ratio must be a positive finite number, got %v", targetRatio)
	}
	if cfg.Bins <= 0 {
		cfg.Bins = 3
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 6
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.01
	}
	axis := c.Axis()
	lo, hi := searchRange(axis, f, cfg)

	start := time.Now()
	res := Result{}
	best := math.Inf(1)
	eval := func(knob float64) (float64, error) {
		knob = axis.Clamp(knob)
		r, err := compress.CompressRatio(c, f, knob)
		if err != nil {
			return 0, err
		}
		res.CompressorRuns++
		if d := math.Abs(r - targetRatio); d < best {
			best = d
			res.Knob = knob
			res.AchievedRatio = r
		}
		return r, nil
	}

	// Divide the raw knob range into bins and bisect each. Faithful to the
	// original FRaZ, the search operates on the *untransformed* error bound:
	// a linear bracket over a domain spanning several orders of magnitude
	// needs many iterations to localise small bounds, which is exactly why
	// the paper's FRaZ-6 is inaccurate and FRaZ-15 is merely acceptable.
	for b := 0; b < cfg.Bins; b++ {
		bl := lo + (hi-lo)*float64(b)/float64(cfg.Bins)
		bh := lo + (hi-lo)*float64(b+1)/float64(cfg.Bins)
		for it := 0; it < cfg.MaxIters; it++ {
			mid := (bl + bh) / 2
			r, err := eval(mid)
			if err != nil {
				return res, fmt.Errorf("fraz: evaluating knob: %w", err)
			}
			if math.Abs(r-targetRatio)/targetRatio <= cfg.Tolerance {
				res.SearchTime = time.Since(start)
				return res, nil
			}
			looser := r < targetRatio
			if axis.Kind == compress.Precision {
				// For precision knobs smaller settings are looser.
				looser = !looser
			}
			if looser {
				bl = mid
			} else {
				bh = mid
			}
		}
	}
	res.SearchTime = time.Since(start)
	if res.CompressorRuns == 0 {
		return res, fmt.Errorf("fraz: search made no progress")
	}
	return res, nil
}

// searchRange computes the global knob range, relative to the data for
// error-bound axes and the native domain for precision axes.
func searchRange(axis compress.Axis, f *grid.Field, cfg Config) (lo, hi float64) {
	if axis.Kind == compress.Precision {
		return axis.Min, axis.Max
	}
	relMin, relMax := cfg.RelKnobMin, cfg.RelKnobMax
	if relMin <= 0 {
		relMin = 1e-6
	}
	if relMax <= 0 {
		relMax = 0.25
	}
	vr := f.ValueRange()
	if vr <= 0 {
		vr = 1
	}
	return axis.Clamp(relMin * vr), axis.Clamp(relMax * vr)
}
