package fraz

import (
	"math"
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/sz"
)

// analytic compressor with ratio = 50·eb^0.4 for fast, exact search tests.
type analytic struct{ runs int }

func (a *analytic) Name() string { return "analytic" }
func (a *analytic) Axis() compress.Axis {
	return compress.Axis{Kind: compress.AbsErrorBound, Min: 1e-9, Max: 10}
}
func (a *analytic) Compress(f *grid.Field, knob float64) ([]byte, error) {
	a.runs++
	ratio := 50 * math.Pow(knob, 0.4)
	n := int(float64(f.Bytes()) / ratio)
	if n < 1 {
		n = 1
	}
	return make([]byte, n), nil
}
func (a *analytic) Decompress([]byte) (*grid.Field, error) { return nil, nil }

func testField() *grid.Field {
	f := grid.MustNew("t", 24, 24)
	for y := 0; y < 24; y++ {
		for x := 0; x < 24; x++ {
			f.Set(float32(math.Sin(float64(x+y)/5)), y, x)
		}
	}
	return f
}

func TestSearchConvergesOnAnalyticLaw(t *testing.T) {
	c := &analytic{}
	f := testField()
	for _, tcr := range []float64{5, 15, 30} {
		res, err := Search(c, f, tcr, DefaultConfig(15))
		if err != nil {
			t.Fatalf("tcr=%v: %v", tcr, err)
		}
		relErr := math.Abs(res.AchievedRatio-tcr) / tcr
		if relErr > 0.05 {
			t.Errorf("tcr=%v: achieved %v (err %.1f%%)", tcr, res.AchievedRatio, relErr*100)
		}
	}
}

func TestMoreIterationsImproveAccuracy(t *testing.T) {
	f := testField()
	errAt := func(iters int) float64 {
		c := &analytic{}
		var total float64
		// Loose tolerance so the search cannot stop early and iteration
		// count is the only difference.
		cfg := DefaultConfig(iters)
		cfg.Tolerance = 1e-9
		for _, tcr := range []float64{4, 9, 17, 26, 33} {
			res, err := Search(c, f, tcr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			total += math.Abs(res.AchievedRatio-tcr) / tcr
		}
		return total / 5
	}
	e2, e15 := errAt(2), errAt(15)
	if e15 >= e2 {
		t.Errorf("15 iterations (%.4f) not better than 2 (%.4f)", e15, e2)
	}
}

func TestRunCountBounded(t *testing.T) {
	c := &analytic{}
	f := testField()
	cfg := DefaultConfig(6)
	cfg.Tolerance = 1e-12 // never early-stop
	res, err := Search(c, f, 12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressorRuns != cfg.Bins*cfg.MaxIters {
		t.Errorf("runs = %d, want %d", res.CompressorRuns, cfg.Bins*cfg.MaxIters)
	}
	if res.SearchTime <= 0 {
		t.Error("search time not measured")
	}
}

func TestEarlyStopSavesRuns(t *testing.T) {
	c := &analytic{}
	f := testField()
	cfg := DefaultConfig(15)
	cfg.Tolerance = 0.10
	res, err := Search(c, f, 12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressorRuns >= cfg.Bins*cfg.MaxIters {
		t.Errorf("early stop did not trigger: %d runs", res.CompressorRuns)
	}
}

func TestInvalidTarget(t *testing.T) {
	c := &analytic{}
	f := testField()
	for _, tcr := range []float64{0, -3, math.Inf(1), math.NaN()} {
		if _, err := Search(c, f, tcr, DefaultConfig(6)); err == nil {
			t.Errorf("target %v accepted", tcr)
		}
	}
}

func TestSearchOnRealSZ(t *testing.T) {
	// End-to-end with the real SZ codec on a smooth field.
	f := grid.MustNew("s", 24, 24, 24)
	for z := 0; z < 24; z++ {
		for y := 0; y < 24; y++ {
			for x := 0; x < 24; x++ {
				f.Set(float32(math.Sin(float64(z+y)/8)*math.Cos(float64(x)/8)), z, y, x)
			}
		}
	}
	res, err := Search(sz.New(), f, 15, DefaultConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(res.AchievedRatio-15) / 15
	if relErr > 0.5 {
		t.Errorf("SZ search achieved %v for target 15 (err %.0f%%)", res.AchievedRatio, relErr*100)
	}
	if res.CompressorRuns < 3 {
		t.Errorf("suspiciously few compressor runs: %d", res.CompressorRuns)
	}
}

func TestPrecisionAxisSearch(t *testing.T) {
	// A compressor whose knob is a precision (lower precision → higher
	// ratio), like FPZIP.
	c := &precisionCompressor{}
	f := testField()
	res, err := Search(c, f, 4, DefaultConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AchievedRatio-4)/4 > 0.3 {
		t.Errorf("achieved %v for target 4", res.AchievedRatio)
	}
}

type precisionCompressor struct{}

func (p *precisionCompressor) Name() string { return "prec" }
func (p *precisionCompressor) Axis() compress.Axis {
	return compress.Axis{Kind: compress.Precision, Min: 2, Max: 32}
}
func (p *precisionCompressor) Compress(f *grid.Field, knob float64) ([]byte, error) {
	ratio := 32 / knob // precision p stores p of 32 bits
	n := int(float64(f.Bytes()) / ratio)
	if n < 1 {
		n = 1
	}
	return make([]byte, n), nil
}
func (p *precisionCompressor) Decompress([]byte) (*grid.Field, error) { return nil, nil }
