// Package batch implements the multi-item request/response container behind
// fxrzd's /v1/estimate-many, /v1/pack-many and /v1/unpack-many endpoints.
//
// The serving benchmarks show the HTTP round trip costs a roughly fixed
// ~200-400us per request (routing, admission, body parse, loopback TCP) — a
// 6.73x overhead on an estimate whose actual work is 78us. For the workload
// the framework targets (millions of clients issuing many small estimate and
// unpack calls, not one giant field) that fixed cost dominates. Batching
// amortizes it: one request carries N items, pays the per-request serving
// machinery once, and returns N independently-statused results, so one bad
// item fails alone while the rest succeed.
//
// # Request container
//
//	byte    magic (MagicRequest, 0xB5)
//	byte    version (1)
//	uvarint item count (>= 1)
//	per item:
//	  uvarint id — caller-chosen correlation id, echoed in the response
//	  uvarint params length, params bytes — optional URL-query-encoded
//	          per-item overrides ("model=...&target=...", "region=..."),
//	          merged over the request's own query parameters
//	  uvarint payload length, payload bytes — the item body, exactly what
//	          the corresponding single-item endpoint takes
//	u32le   CRC-32C over everything from the magic byte to the last payload
//
// # Response container
//
//	byte    magic (MagicResponse, 0xB6)
//	byte    version (1)
//	uvarint item count
//	per item:
//	  uvarint id — echoed from the request item
//	  uvarint status — the item's HTTP-semantics status code (200 = ok)
//	  uvarint payload length, payload bytes — the single-endpoint response
//	          body on success, a plain-text error message otherwise
//	u32le   CRC-32C over everything from the magic byte to the last payload
//
// The framing discipline is the indexed-container one (internal/roi, 0xC1):
// uvarint length prefixes, a trailing CRC-32C binding the frame, and loud
// rejection of anything mutated or truncated — a batch is one body parse,
// not N separately-framed sub-requests, so a single flipped byte must fail
// the whole parse rather than silently mis-split the items.
package batch

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/fxrz-go/fxrz/internal/compress"
)

// Container magic bytes. They share the one-byte namespace of the codec
// stream magics (compress.Magic*), so a batch container is cheaply
// distinguishable from any payload it could carry.
const (
	MagicRequest  byte = 0xB5
	MagicResponse byte = 0xB6
)

// Version is the container format version.
const Version = 1

// MaxItems bounds the item count any container may declare. It exists to
// make a hostile count harmless before allocation — real batch limits are
// the serving layer's (Config.MaxBatch, default 64).
const MaxItems = 1 << 16

// castagnoli is the CRC-32C table for the container checksum (hardware
// accelerated on amd64/arm64), matching the roi container's choice.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Item is one request entry: a correlation ID the response echoes, optional
// URL-query-encoded per-item parameter overrides, and the payload the
// single-item endpoint would have taken as its whole body.
type Item struct {
	ID      uint64
	Params  string
	Payload []byte
}

// Result is one response entry: the echoed ID, the item's own HTTP-semantics
// status, and the payload (result bytes on 2xx, an error message otherwise).
type Result struct {
	ID      uint64
	Status  int
	Payload []byte
}

// IsRequest reports whether blob begins like a batch request container.
func IsRequest(blob []byte) bool {
	return len(blob) >= 2 && blob[0] == MagicRequest
}

// IsResponse reports whether blob begins like a batch response container.
func IsResponse(blob []byte) bool {
	return len(blob) >= 2 && blob[0] == MagicResponse
}

// EncodeRequest frames items as a request container.
func EncodeRequest(items []Item) []byte {
	size := 2 + binary.MaxVarintLen64 + 4
	for _, it := range items {
		size += 3*binary.MaxVarintLen64 + len(it.Params) + len(it.Payload)
	}
	out := make([]byte, 0, size)
	out = append(out, MagicRequest, Version)
	out = binary.AppendUvarint(out, uint64(len(items)))
	for _, it := range items {
		out = binary.AppendUvarint(out, it.ID)
		out = binary.AppendUvarint(out, uint64(len(it.Params)))
		out = append(out, it.Params...)
		out = binary.AppendUvarint(out, uint64(len(it.Payload)))
		out = append(out, it.Payload...)
	}
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
}

// EncodeResponse frames results as a response container.
func EncodeResponse(results []Result) []byte {
	size := 2 + binary.MaxVarintLen64 + 4
	for _, r := range results {
		size += 3*binary.MaxVarintLen64 + len(r.Payload)
	}
	out := make([]byte, 0, size)
	out = append(out, MagicResponse, Version)
	out = binary.AppendUvarint(out, uint64(len(results)))
	for _, r := range results {
		out = binary.AppendUvarint(out, r.ID)
		out = binary.AppendUvarint(out, uint64(r.Status))
		out = binary.AppendUvarint(out, uint64(len(r.Payload)))
		out = append(out, r.Payload...)
	}
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
}

// DecodeRequest parses a request container. Item payloads and params alias
// blob — valid as long as the caller keeps blob alive.
func DecodeRequest(blob []byte) ([]Item, error) {
	body, count, err := openFrame(blob, MagicRequest)
	if err != nil {
		return nil, err
	}
	items := make([]Item, 0, count)
	for i := 0; i < count; i++ {
		id, rest, err := takeUvarint(body, "item id")
		if err != nil {
			return nil, err
		}
		params, rest, err := takeBytes(rest, "item params")
		if err != nil {
			return nil, err
		}
		payload, rest, err := takeBytes(rest, "item payload")
		if err != nil {
			return nil, err
		}
		items = append(items, Item{ID: id, Params: string(params), Payload: payload})
		body = rest
	}
	if len(body) != 0 {
		return nil, corruptf("%d trailing bytes after the last item", len(body))
	}
	return items, nil
}

// DecodeResponse parses a response container. Result payloads alias blob.
func DecodeResponse(blob []byte) ([]Result, error) {
	body, count, err := openFrame(blob, MagicResponse)
	if err != nil {
		return nil, err
	}
	results := make([]Result, 0, count)
	for i := 0; i < count; i++ {
		id, rest, err := takeUvarint(body, "result id")
		if err != nil {
			return nil, err
		}
		status, rest, err := takeUvarint(rest, "result status")
		if err != nil {
			return nil, err
		}
		if status < 100 || status > 599 {
			return nil, corruptf("result status %d outside 100..599", status)
		}
		payload, rest, err := takeBytes(rest, "result payload")
		if err != nil {
			return nil, err
		}
		results = append(results, Result{ID: id, Status: int(status), Payload: payload})
		body = rest
	}
	if len(body) != 0 {
		return nil, corruptf("%d trailing bytes after the last result", len(body))
	}
	return results, nil
}

// openFrame validates magic, version, checksum and count, returning the item
// body (everything between the count and the CRC) and the declared count.
func openFrame(blob []byte, magic byte) (body []byte, count int, err error) {
	if len(blob) < 2 || blob[0] != magic {
		return nil, 0, corruptf("not a batch container (magic 0x%02x)", firstByte(blob))
	}
	if blob[1] != Version {
		return nil, 0, corruptf("container version %d, want %d", blob[1], Version)
	}
	if len(blob) < 2+1+4 {
		return nil, 0, corruptf("truncated container (%d bytes)", len(blob))
	}
	framed, sum := blob[:len(blob)-4], binary.LittleEndian.Uint32(blob[len(blob)-4:])
	if got := crc32.Checksum(framed, castagnoli); got != sum {
		return nil, 0, corruptf("container checksum mismatch")
	}
	n, k := binary.Uvarint(framed[2:])
	if k <= 0 {
		return nil, 0, corruptf("bad item count")
	}
	if n == 0 {
		return nil, 0, corruptf("empty batch")
	}
	// Every item needs at least 3 bytes of framing, so a count the remaining
	// bytes cannot possibly hold is rejected before any allocation.
	body = framed[2+k:]
	if n > MaxItems || n > uint64(len(body)) {
		return nil, 0, corruptf("item count %d exceeds the container", n)
	}
	return body, int(n), nil
}

// takeUvarint pops one uvarint off blob.
func takeUvarint(blob []byte, what string) (uint64, []byte, error) {
	v, k := binary.Uvarint(blob)
	if k <= 0 {
		return 0, nil, corruptf("bad %s", what)
	}
	return v, blob[k:], nil
}

// takeBytes pops one length-prefixed byte run off blob.
func takeBytes(blob []byte, what string) ([]byte, []byte, error) {
	n, rest, err := takeUvarint(blob, what+" length")
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, corruptf("truncated %s (%d of %d bytes)", what, len(rest), n)
	}
	return rest[:n:n], rest[n:], nil
}

// corruptf tags container parse failures with compress.ErrCorrupt so the
// serving layer maps them to 400, like every other malformed stream.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("batch: %w: "+format, append([]any{compress.ErrCorrupt}, args...)...)
}

func firstByte(blob []byte) byte {
	if len(blob) == 0 {
		return 0
	}
	return blob[0]
}
