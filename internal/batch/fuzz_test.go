package batch

import (
	"bytes"
	"testing"
)

// FuzzBatchContainer drives the request decoder with arbitrary bytes and,
// when they parse, requires a re-encode of the decoded items to parse back
// to the same thing — the decoder must never accept a frame it cannot
// canonically represent. Interesting corpus entries are valid containers
// (added as seeds) whose mutations exercise the CRC and length guards.
func FuzzBatchContainer(f *testing.F) {
	f.Add(EncodeRequest([]Item{{ID: 1, Params: "model=nyx-sz&target=8", Payload: []byte("fxrzfield x 4\n")}}))
	f.Add(EncodeRequest([]Item{{ID: 0}, {ID: 7, Payload: bytes.Repeat([]byte{0xB5}, 40)}}))
	f.Add(EncodeResponse([]Result{{ID: 3, Status: 200, Payload: []byte("ok")}, {ID: 4, Status: 404}}))
	f.Add([]byte{MagicRequest, Version, 1, 1, 0, 0})
	f.Fuzz(func(t *testing.T, blob []byte) {
		if items, err := DecodeRequest(blob); err == nil {
			again, err := DecodeRequest(EncodeRequest(items))
			if err != nil {
				t.Fatalf("re-encode of a decoded request failed to decode: %v", err)
			}
			requireSameItems(t, items, again)
		}
		if results, err := DecodeResponse(blob); err == nil {
			again, err := DecodeResponse(EncodeResponse(results))
			if err != nil {
				t.Fatalf("re-encode of a decoded response failed to decode: %v", err)
			}
			if len(again) != len(results) {
				t.Fatalf("response round trip: %d -> %d results", len(results), len(again))
			}
			for i := range results {
				if again[i].ID != results[i].ID || again[i].Status != results[i].Status ||
					!bytes.Equal(again[i].Payload, results[i].Payload) {
					t.Fatalf("response result %d diverged on round trip", i)
				}
			}
		}
	})
}

func requireSameItems(t *testing.T, a, b []Item) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("request round trip: %d -> %d items", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Params != b[i].Params || !bytes.Equal(a[i].Payload, b[i].Payload) {
			t.Fatalf("request item %d diverged on round trip", i)
		}
	}
}
