package batch

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress"
)

// randomItems builds a deterministic pseudo-random item set covering the
// frame's edge shapes: empty params, empty payloads, large IDs, binary
// payloads containing the container magics.
func randomItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		it := &items[i]
		it.ID = rng.Uint64() >> uint(rng.Intn(64))
		if rng.Intn(3) > 0 {
			it.Params = "model=nyx-sz&target=8.5"[:rng.Intn(23)]
		}
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		if len(payload) > 0 && rng.Intn(4) == 0 {
			payload[0] = MagicRequest // payloads may look like containers
		}
		it.Payload = payload
	}
	return items
}

func TestRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 7, 64, 300} {
		items := randomItems(rng, n)
		blob := EncodeRequest(items)
		if !IsRequest(blob) {
			t.Fatalf("n=%d: IsRequest = false", n)
		}
		if IsResponse(blob) {
			t.Fatalf("n=%d: request container claims to be a response", n)
		}
		got, err := DecodeRequest(blob)
		if err != nil {
			t.Fatalf("n=%d: DecodeRequest: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d items", n, len(got))
		}
		for i := range items {
			if got[i].ID != items[i].ID || got[i].Params != items[i].Params ||
				!bytes.Equal(got[i].Payload, items[i].Payload) {
				t.Fatalf("n=%d item %d: round trip diverged: %+v != %+v", n, i, got[i], items[i])
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	statuses := []int{200, 400, 404, 413, 503}
	for _, n := range []int{1, 3, 64} {
		results := make([]Result, n)
		for i := range results {
			payload := make([]byte, rng.Intn(48))
			rng.Read(payload)
			results[i] = Result{ID: rng.Uint64(), Status: statuses[rng.Intn(len(statuses))], Payload: payload}
		}
		blob := EncodeResponse(results)
		if !IsResponse(blob) || IsRequest(blob) {
			t.Fatalf("n=%d: magic confusion", n)
		}
		got, err := DecodeResponse(blob)
		if err != nil {
			t.Fatalf("n=%d: DecodeResponse: %v", n, err)
		}
		for i := range results {
			if got[i].ID != results[i].ID || got[i].Status != results[i].Status ||
				!bytes.Equal(got[i].Payload, results[i].Payload) {
				t.Fatalf("n=%d result %d: round trip diverged", n, i)
			}
		}
	}
}

// TestMutatedFrameRejected flips every byte of a valid container in turn:
// each mutation must either fail decoding or (never) decode to the original
// items. The trailing CRC makes "decodes differently but silently" impossible.
func TestMutatedFrameRejected(t *testing.T) {
	items := randomItems(rand.New(rand.NewSource(3)), 5)
	blob := EncodeRequest(items)
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x41
		got, err := DecodeRequest(mut)
		if err != nil {
			continue
		}
		// A decode that still succeeds must have produced the same items —
		// which a single XOR under a CRC-protected frame cannot.
		t.Fatalf("byte %d: mutated container decoded to %d items without error", i, len(got))
	}
}

func TestTruncatedFrameRejected(t *testing.T) {
	blob := EncodeRequest(randomItems(rand.New(rand.NewSource(4)), 3))
	for n := 0; n < len(blob); n++ {
		if _, err := DecodeRequest(blob[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(blob))
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		blob []byte
		want string
	}{
		{"empty", nil, "not a batch container"},
		{"wrong magic", []byte{0xC1, 1, 0, 0, 0, 0, 0}, "not a batch container"},
		{"bad version", []byte{MagicRequest, 9, 0, 0, 0, 0, 0}, "version 9"},
		{"empty batch", withCRC([]byte{MagicRequest, Version, 0, 0}), "empty batch"},
		{"count overruns", withCRC([]byte{MagicRequest, Version, 200, 1}), "exceeds the container"},
		{"trailing bytes", withCRC(append(EncodeRequest([]Item{{ID: 1}})[:len(EncodeRequest([]Item{{ID: 1}}))-4], 0xFF)), "trailing bytes"},
	}
	for _, tc := range cases {
		_, err := DecodeRequest(tc.blob)
		if err == nil {
			t.Errorf("%s: decoded without error", tc.name)
			continue
		}
		if !errors.Is(err, compress.ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap compress.ErrCorrupt", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q, want substring %q", tc.name, err, tc.want)
		}
	}
	// A response status outside HTTP's range is structural corruption.
	bad := withCRC([]byte{MagicResponse, Version, 1, 1, 42, 0})
	if _, err := DecodeResponse(bad); err == nil || !strings.Contains(err.Error(), "outside 100..599") {
		t.Errorf("out-of-range status: err = %v", err)
	}
}

// withCRC appends the checksum a hand-built frame body needs to get past the
// frame check and into the structural validation under test.
func withCRC(frame []byte) []byte {
	out := append([]byte(nil), frame...)
	sum := crc32.Checksum(out, crc32.MakeTable(crc32.Castagnoli))
	return binary.LittleEndian.AppendUint32(out, sum)
}
