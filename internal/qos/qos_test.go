package qos

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/fxrz-go/fxrz/internal/obs"
)

// serveClasses mirrors the serving tier's class roster: estimate gets twice
// the reserved weight of unpack and pack.
var serveClasses = []Class{
	{Name: "estimate", Weight: 2},
	{Name: "unpack", Weight: 1},
	{Name: "pack", Weight: 1},
}

func TestReserveDistribution(t *testing.T) {
	cases := []struct {
		capacity int
		classes  []Class
		want     []int
	}{
		// Half of 8 is 4, split 2:1:1.
		{8, serveClasses, []int{2, 1, 1}},
		// Half of 16 is 8, split 4:2:2.
		{16, serveClasses, []int{4, 2, 2}},
		// Half of 4 is 2: estimate's exact share is 1; the leftover slot goes
		// to the highest-priority class among the tied remainders (unpack).
		{4, serveClasses, []int{1, 1, 0}},
		// Half of 2 is 1: the single reserved slot goes to estimate.
		{2, serveClasses, []int{1, 0, 0}},
		// Capacity 1 reserves nothing: the controller degenerates to a flat
		// semaphore.
		{1, serveClasses, []int{0, 0, 0}},
		// Equal weights, odd budget: the extra slot follows priority order.
		{9, []Class{{"a", 1}, {"b", 1}, {"c", 1}}, []int{2, 1, 1}},
	}
	for _, tc := range cases {
		c := NewController(tc.capacity, tc.classes)
		for i, want := range tc.want {
			if got := c.Reserve(i); got != want {
				t.Errorf("capacity %d: reserve[%d] = %d, want %d", tc.capacity, i, got, want)
			}
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := map[string]func(){
		"no classes":     func() { NewController(4, nil) },
		"empty name":     func() { NewController(4, []Class{{Name: "", Weight: 1}}) },
		"duplicate name": func() { NewController(4, []Class{{"a", 1}, {"a", 1}}) },
		"zero weight":    func() { NewController(4, []Class{{"a", 0}}) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestGuaranteeUnderFlood is the package-level starvation proof: with the
// lowest-priority class saturating everything it can reach, every
// higher-priority class still gets its full reserve admitted on first try.
func TestGuaranteeUnderFlood(t *testing.T) {
	c := NewController(8, serveClasses) // reserves 2/1/1
	const pack = 2

	// Pack floods: own reserve (1) plus borrowed slots while the free pool
	// still covers estimate's 2 + unpack's 1 unused guarantees = 5 total.
	admitted := 0
	for c.TryAcquire(pack) {
		admitted++
	}
	if admitted != 5 {
		t.Fatalf("pack flood admitted %d slots, want 5 (1 reserve + 4 borrowable)", admitted)
	}

	// Estimates arrive into a saturated server: the full reserve admits.
	for k := 0; k < 2; k++ {
		if !c.TryAcquire(0) {
			t.Fatalf("estimate %d shed despite a guaranteed reserve of 2", k)
		}
	}
	// Beyond the reserve there is nothing left to borrow (unpack's guarantee
	// still needs the last free slot).
	if c.TryAcquire(0) {
		t.Error("estimate admitted past its reserve into unpack's guarantee")
	}
	if !c.TryAcquire(1) {
		t.Error("unpack shed despite its guaranteed reserve")
	}
	if c.Total() != 8 {
		t.Fatalf("total = %d, want 8", c.Total())
	}
	// Everything is full now; every class sheds.
	for i := range serveClasses {
		if c.TryAcquire(i) {
			t.Errorf("class %d admitted past capacity", i)
		}
	}

	// A retiring pack frees a borrowed slot; pack can re-take it only after
	// the guarantees are no longer waiting on it.
	c.Release(pack)
	if !c.TryAcquire(pack) {
		t.Error("pack shed although all guarantees are fully admitted")
	}
}

// TestWorkConservingBorrow: a lone class may grow to capacity minus the
// others' unused reserves, and regains headroom as guaranteed traffic runs.
func TestWorkConservingBorrow(t *testing.T) {
	c := NewController(8, serveClasses) // reserves 2/1/1

	// Estimate alone: 8 - (1+1) = 6 slots reachable.
	n := 0
	for c.TryAcquire(0) {
		n++
	}
	if n != 6 {
		t.Fatalf("estimate alone reached %d slots, want 6", n)
	}
	for k := 0; k < 6; k++ {
		c.Release(0)
	}

	// With unpack and pack each running at their reserve, their guarantees
	// are satisfied and estimate may take everything that remains.
	if !c.TryAcquire(1) || !c.TryAcquire(2) {
		t.Fatal("reserved admissions failed on an idle controller")
	}
	n = 0
	for c.TryAcquire(0) {
		n++
	}
	if n != 6 {
		t.Fatalf("estimate reached %d slots alongside satisfied guarantees, want 6", n)
	}
}

// TestCapacityOneIsFlatSemaphore: with no reserves, the first class in wins
// and everyone else sheds — exactly the pre-QoS behavior.
func TestCapacityOneIsFlatSemaphore(t *testing.T) {
	c := NewController(1, serveClasses)
	if !c.TryAcquire(2) {
		t.Fatal("first acquire shed on an empty controller")
	}
	for i := range serveClasses {
		if c.TryAcquire(i) {
			t.Errorf("class %d admitted past capacity 1", i)
		}
	}
	c.Release(2)
	if !c.TryAcquire(0) {
		t.Error("freed slot not admissible")
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on Release without acquire")
		}
	}()
	NewController(4, serveClasses).Release(0)
}

// TestInvariantProperty drives a long random acquire/release sequence and
// checks, after every step, the load-bearing invariant (free slots cover all
// unused guarantees) plus its consequence: an acquire for a class below its
// reserve never fails.
func TestInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewController(8, serveClasses)
	held := make([]int, len(serveClasses))
	for step := 0; step < 5000; step++ {
		i := rng.Intn(len(serveClasses))
		if rng.Intn(2) == 0 && held[i] > 0 {
			c.Release(i)
			held[i]--
		} else {
			under := c.InFlight(i) < c.Reserve(i)
			if c.TryAcquire(i) {
				held[i]++
			} else if under {
				t.Fatalf("step %d: class %d shed below its reserve", step, i)
			}
		}
		free := c.Capacity() - c.Total()
		needed := 0
		for j := range serveClasses {
			if d := c.Reserve(j) - c.InFlight(j); d > 0 {
				needed += d
			}
		}
		if free < needed {
			t.Fatalf("step %d: invariant broken: %d free < %d unused guarantees", step, free, needed)
		}
	}
}

// TestConcurrentAccounting hammers the controller from many goroutines (the
// -race CI pass runs this) and checks the books balance afterwards.
func TestConcurrentAccounting(t *testing.T) {
	c := NewController(6, serveClasses)
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for k := 0; k < 400; k++ {
				i := rng.Intn(len(serveClasses))
				if c.TryAcquire(i) {
					if c.InFlight(i) < 1 || c.Total() > c.Capacity() {
						t.Errorf("inconsistent counts under concurrency")
					}
					c.Release(i)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Total() != 0 {
		t.Fatalf("total = %d after all releases, want 0", c.Total())
	}
	for i := range serveClasses {
		if c.InFlight(i) != 0 {
			t.Errorf("class %d inflight = %d after all releases", i, c.InFlight(i))
		}
	}
}

// TestObsCounters: the guarantee must be *observable* — admissions, sheds and
// borrows show up per class in the obs snapshot.
func TestObsCounters(t *testing.T) {
	obs.Enable()
	before := obs.TakeSnapshot()
	c := NewController(2, serveClasses) // reserve 1/0/0
	if !c.TryAcquire(2) {               // pack borrows the unreserved slot
		t.Fatal("pack shed on empty controller")
	}
	if c.TryAcquire(2) { // estimate's reserve is not borrowable
		t.Fatal("pack admitted into estimate's guarantee")
	}
	if !c.TryAcquire(0) {
		t.Fatal("estimate shed below its reserve")
	}
	c.Release(0)
	c.Release(2)
	after := obs.TakeSnapshot()
	delta := func(name string) int64 { return after.Counters[name] - before.Counters[name] }
	if delta("qos/admitted/pack") != 1 || delta("qos/borrowed/pack") != 1 || delta("qos/shed/pack") != 1 {
		t.Errorf("pack counters = admitted %d borrowed %d shed %d, want 1/1/1",
			delta("qos/admitted/pack"), delta("qos/borrowed/pack"), delta("qos/shed/pack"))
	}
	if delta("qos/admitted/estimate") != 1 || delta("qos/shed/estimate") != 0 {
		t.Errorf("estimate counters = admitted %d shed %d, want 1/0",
			delta("qos/admitted/estimate"), delta("qos/shed/estimate"))
	}
	if after.Gauges["qos/reserve/estimate"] != 1 || after.Gauges["qos/capacity"] != 2 {
		t.Errorf("reserve/capacity gauges = %d/%d, want 1/2",
			after.Gauges["qos/reserve/estimate"], after.Gauges["qos/capacity"])
	}
}

func TestStatus(t *testing.T) {
	c := NewController(8, serveClasses)
	c.TryAcquire(1)
	st := c.Status()
	if len(st) != 3 || st[0].Name != "estimate" || st[0].Reserve != 2 || st[0].Weight != 2 {
		t.Fatalf("status[0] = %+v", st)
	}
	if st[1].InFlight != 1 {
		t.Errorf("unpack in-flight = %d, want 1", st[1].InFlight)
	}
	c.Release(1)
}

// TestBatchTicketArithmetic pins the n-slot admission rule on capacity 8
// (reserves 2/1/1): a batch is admitted iff, after taking all n slots, free
// still covers every class's unused guarantee.
func TestBatchTicketArithmetic(t *testing.T) {
	c := NewController(8, serveClasses)
	// Idle: estimate may take up to capacity - other reserves = 8-2 = 6.
	if got := c.MaxCost(0); got != 6 {
		t.Fatalf("MaxCost(estimate) = %d, want 6", got)
	}
	if c.TryAcquireN(0, 7) {
		t.Fatal("7-slot estimate batch admitted; it would eat unpack/pack guarantees")
	}
	if !c.TryAcquireN(0, 6) {
		t.Fatal("6-slot estimate batch shed on an idle controller")
	}
	// 2 free, both owed to unpack and pack: no further estimate slot, but the
	// guaranteed classes still get theirs.
	if c.TryAcquire(0) {
		t.Fatal("estimate admitted into slots owed to other guarantees")
	}
	if !c.TryAcquire(1) || !c.TryAcquire(2) {
		t.Fatal("guaranteed classes shed while the invariant promised them slots")
	}
	c.ReleaseN(0, 6)
	c.Release(1)
	c.Release(2)
	if c.Total() != 0 {
		t.Fatalf("books unbalanced after releases: total = %d", c.Total())
	}
}

// TestBatchTicketAllOrNothing checks a shed batch leaves no partial state.
func TestBatchTicketAllOrNothing(t *testing.T) {
	c := NewController(8, serveClasses)
	if !c.TryAcquireN(1, 3) {
		t.Fatal("3-slot unpack batch shed on an idle controller")
	}
	before := c.Total()
	if c.TryAcquireN(1, 6) {
		t.Fatal("6-slot unpack batch admitted with only 5 free")
	}
	if c.Total() != before || c.InFlight(1) != 3 {
		t.Fatalf("shed batch changed the books: total %d->%d, inflight %d",
			before, c.Total(), c.InFlight(1))
	}
	c.ReleaseN(1, 3)
}

// TestTryAcquireNMatchesSingles: a class's n-slot ticket is admitted exactly
// when n consecutive single acquires would all be — the batch path must not
// change admission semantics, only atomicity.
func TestTryAcquireNMatchesSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a := NewController(8, serveClasses)
		b := NewController(8, serveClasses)
		// Put both controllers in the same random occupancy.
		for k := 0; k < rng.Intn(8); k++ {
			i := rng.Intn(len(serveClasses))
			ra, rb := a.TryAcquire(i), b.TryAcquire(i)
			if ra != rb {
				t.Fatalf("trial %d: controllers diverged during setup", trial)
			}
		}
		i, n := rng.Intn(len(serveClasses)), 1+rng.Intn(6)
		singles := true
		taken := 0
		for k := 0; k < n; k++ {
			if !a.TryAcquire(i) {
				singles = false
				break
			}
			taken++
		}
		if got := b.TryAcquireN(i, n); got != singles {
			t.Fatalf("trial %d: TryAcquireN(%d, %d) = %v, %d singles said %v",
				trial, i, n, got, n, singles)
		}
		_ = taken
	}
}

func TestMaxCostFloorsAtOne(t *testing.T) {
	// Capacity 2 gives estimate reserve 1 and the others 0; pack's MaxCost is
	// capacity - 1 = 1. Nothing may ever report a max below one slot.
	c := NewController(2, serveClasses)
	for i := range serveClasses {
		if got := c.MaxCost(i); got < 1 {
			t.Errorf("MaxCost(%d) = %d, want >= 1", i, got)
		}
	}
	if got := c.MaxCost(2); got != 1 {
		t.Errorf("MaxCost(pack) = %d, want 1", got)
	}
}

func TestReleaseNUnderflowPanics(t *testing.T) {
	c := NewController(8, serveClasses)
	if !c.TryAcquireN(0, 2) {
		t.Fatal("setup acquire failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on ReleaseN beyond in-flight count")
		}
	}()
	c.ReleaseN(0, 3)
}

func TestBatchBorrowedAccounting(t *testing.T) {
	obs.Enable()
	before := obs.TakeSnapshot()
	c := NewController(8, serveClasses)
	// unpack reserve is 1: a 3-slot ticket uses its 1 guaranteed slot and
	// borrows 2.
	if !c.TryAcquireN(1, 3) {
		t.Fatal("3-slot unpack batch shed on an idle controller")
	}
	mid := obs.TakeSnapshot()
	if got := mid.Counters["qos/borrowed/unpack"] - before.Counters["qos/borrowed/unpack"]; got != 2 {
		t.Errorf("borrowed counter delta = %d, want 2", got)
	}
	if got := mid.Counters["qos/admitted/unpack"] - before.Counters["qos/admitted/unpack"]; got != 1 {
		t.Errorf("admitted counter delta = %d, want 1 (one ticket, not three)", got)
	}
	if got := mid.Gauges["qos/inflight/unpack"] - before.Gauges["qos/inflight/unpack"]; got != 3 {
		t.Errorf("inflight gauge delta = %d, want 3", got)
	}
	c.ReleaseN(1, 3)
	after := obs.TakeSnapshot()
	if got := after.Gauges["qos/inflight/unpack"] - before.Gauges["qos/inflight/unpack"]; got != 0 {
		t.Errorf("inflight gauge delta after release = %d, want 0", got)
	}
}
