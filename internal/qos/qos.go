// Package qos is the serving tier's admission policy: a fixed pool of
// request slots split into weighted priority classes, each with a guaranteed
// share, plus work-conserving borrowing of whatever the guarantees do not
// currently need.
//
// The problem it solves is starvation across request costs. fxrzd's estimate
// endpoint is a feature lookup (microseconds–milliseconds); pack runs a full
// compressor over the field (milliseconds–seconds). Behind a single flat
// semaphore, a burst of packs occupies every slot for their full duration and
// the cheap, high-volume estimates — the paper's actual production path — are
// shed even though serving them would cost almost nothing. A priority class
// with a guaranteed slot share makes that impossible: some capacity is always
// answerable for each class, no matter what the others are doing.
//
// The policy is admit-or-shed, never queue (matching the serving layer's
// latency-honesty rule), and is enforced with one invariant:
//
//	free slots >= sum over classes of (unused guarantee)
//
// where a class's unused guarantee is max(0, reserve - inflight). A request
// is admitted only if the invariant still holds afterwards. Two properties
// follow directly:
//
//   - Guarantee: a class below its reserve is ALWAYS admitted — the invariant
//     says enough free slots exist to cover its unused reserve, and admitting
//     it decrements both sides equally.
//   - Work conservation: slots beyond the guarantees are first-come
//     first-served across all classes, so any single class may grow to
//     capacity minus the other classes' *unused* reserves — as guaranteed
//     traffic arrives and retires, borrowed headroom adapts instead of being
//     a fixed partition.
//
// Reserves are sized from the class weights over half the capacity (the
// other half is permanently borrowable), so guarantees can never consume the
// whole pool; at capacity 1 there are no reserves and the controller
// degenerates to the flat semaphore it replaced.
package qos

import (
	"fmt"
	"sync"

	"github.com/fxrz-go/fxrz/internal/obs"
)

// Class declares one priority class. Order matters: earlier classes are
// higher priority, which breaks ties when distributing reserve slots.
type Class struct {
	// Name labels the class in obs metrics and health output.
	Name string
	// Weight is the class's relative share of the reserved half of the
	// capacity. Must be >= 1.
	Weight int
}

// Controller is the class-aware admission gate. Create with NewController;
// the zero value is not usable.
//
// All methods are safe for concurrent use. Admission runs under one mutex —
// at serving request rates (each admitted request then does microseconds to
// seconds of work) the lock is never contended enough to matter, and it
// keeps the invariant arithmetic exact, which the guarantee proof needs.
type Controller struct {
	capacity int
	classes  []Class
	reserve  []int

	mu       sync.Mutex
	inflight []int
	total    int
}

// NewController builds a controller with the given total slot capacity
// (values < 1 are treated as 1) over the classes in priority order. It
// panics on an empty class list, a duplicate name, or a weight < 1 — all
// programmer errors, not runtime conditions.
func NewController(capacity int, classes []Class) *Controller {
	if len(classes) == 0 {
		panic("qos: NewController with no classes")
	}
	seen := make(map[string]bool, len(classes))
	for _, cl := range classes {
		if cl.Name == "" || seen[cl.Name] {
			panic(fmt.Sprintf("qos: empty or duplicate class name %q", cl.Name))
		}
		seen[cl.Name] = true
		if cl.Weight < 1 {
			panic(fmt.Sprintf("qos: class %q has weight %d (must be >= 1)", cl.Name, cl.Weight))
		}
	}
	if capacity < 1 {
		capacity = 1
	}
	c := &Controller{
		capacity: capacity,
		classes:  append([]Class(nil), classes...),
		reserve:  distributeReserves(capacity/2, classes),
		inflight: make([]int, len(classes)),
	}
	obs.SetGauge("qos/capacity", int64(capacity))
	for i, cl := range c.classes {
		obs.SetGauge("qos/reserve/"+cl.Name, int64(c.reserve[i]))
	}
	return c
}

// distributeReserves splits budget slots among the classes proportionally to
// weight by largest remainder; ties (and the order quotas are topped up in)
// follow class priority. The budget is half the capacity, so the sum of all
// reserves never exceeds capacity/2 and borrowing always has headroom.
func distributeReserves(budget int, classes []Class) []int {
	reserves := make([]int, len(classes))
	if budget <= 0 {
		return reserves
	}
	sumW := 0
	for _, cl := range classes {
		sumW += cl.Weight
	}
	assigned := 0
	// remainders are budget*weight mod sumW, scaled integers so ordering is
	// exact (no float ties).
	rem := make([]int, len(classes))
	for i, cl := range classes {
		reserves[i] = budget * cl.Weight / sumW
		rem[i] = budget*cl.Weight - reserves[i]*sumW
		assigned += reserves[i]
	}
	for assigned < budget {
		best := -1
		for i := range classes {
			if rem[i] >= 0 && (best < 0 || rem[i] > rem[best]) {
				best = i
			}
		}
		if best < 0 { // unreachable: floors drop < 1 slot per class
			break
		}
		reserves[best]++
		rem[best] = -1 // each class tops up at most once per full pass
		assigned++
	}
	return reserves
}

// TryAcquire claims a slot for class i without blocking, reporting whether
// admission succeeded. A class below its reserve always succeeds; beyond it,
// admission succeeds only while the remaining free slots still cover every
// other class's unused guarantee (a borrowed slot must never be one a
// guarantee will need). A false return means shed — the caller should answer
// 429 and must not Release.
func (c *Controller) TryAcquire(i int) bool { return c.TryAcquireN(i, 1) }

// TryAcquireN claims n slots for class i in one admission decision — the
// batch endpoints' cost-based ticket, where n is the weighted item count of
// the batch. The invariant check is the n-slot generalisation of TryAcquire:
// admit only if, after taking all n slots, the free slots still cover every
// class's unused guarantee (class i's own included, recomputed at its new
// in-flight count). For n = 1 this reduces exactly to the single-slot rule:
// a class below its reserve is always admitted, and borrowing never takes a
// slot a guarantee will need. All n slots are admitted or none are — a batch
// never holds a partial ticket. Slots of the n beyond the class's reserve
// count as borrowed in the obs metrics.
func (c *Controller) TryAcquireN(i, n int) bool {
	if n < 1 {
		panic(fmt.Sprintf("qos: TryAcquireN with n = %d for class %s", n, c.classes[i].Name))
	}
	name := c.classes[i].Name
	c.mu.Lock()
	free := c.capacity - c.total
	if free < n {
		c.mu.Unlock()
		obs.Inc("qos/shed/" + name)
		return false
	}
	needed := 0
	for j := range c.classes {
		after := c.inflight[j]
		if j == i {
			after += n
		}
		if after < c.reserve[j] {
			needed += c.reserve[j] - after
		}
	}
	if free-n < needed {
		c.mu.Unlock()
		obs.Inc("qos/shed/" + name)
		return false
	}
	borrowed := borrowedOf(c.inflight[i], c.reserve[i], n)
	c.inflight[i] += n
	c.total += n
	peak := int64(c.inflight[i])
	c.mu.Unlock()
	obs.Inc("qos/admitted/" + name)
	if borrowed > 0 {
		obs.Add("qos/borrowed/"+name, int64(borrowed))
	}
	obs.AddGauge("qos/inflight/"+name, int64(n))
	obs.MaxGauge("qos/inflight_peak/"+name, peak)
	return true
}

// borrowedOf counts how many of n newly admitted slots land beyond the
// class's reserve at in-flight count inflight.
func borrowedOf(inflight, reserve, n int) int {
	b := inflight + n - reserve
	if b > n {
		b = n
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Release returns a slot previously acquired for class i. Releasing a class
// with nothing in flight panics, as that always indicates an accounting bug.
func (c *Controller) Release(i int) { c.ReleaseN(i, 1) }

// ReleaseN returns the n slots of a batch ticket previously granted by
// TryAcquireN. Releasing more than the class has in flight panics.
func (c *Controller) ReleaseN(i, n int) {
	c.mu.Lock()
	if n < 1 || c.inflight[i] < n {
		c.mu.Unlock()
		panic(fmt.Sprintf("qos: ReleaseN(%d) without matching slots for class %s", n, c.classes[i].Name))
	}
	c.inflight[i] -= n
	c.total -= n
	c.mu.Unlock()
	obs.AddGauge("qos/inflight/"+c.classes[i].Name, int64(-n))
}

// MaxCost returns the largest n TryAcquireN(i, n) could ever grant: the
// capacity minus every other class's full reserve. A batch ticket above this
// cost would violate the guarantee invariant even on an idle controller, so
// callers clamp their cost here — the batch then only runs when the server
// is quiet enough, instead of being permanently inadmissible.
func (c *Controller) MaxCost(i int) int {
	others := 0
	for j := range c.classes {
		if j != i {
			others += c.reserve[j]
		}
	}
	m := c.capacity - others
	if m < 1 {
		m = 1
	}
	return m
}

// Capacity returns the total slot count.
func (c *Controller) Capacity() int { return c.capacity }

// Reserve returns class i's guaranteed slot count.
func (c *Controller) Reserve(i int) int { return c.reserve[i] }

// InFlight returns class i's currently admitted count (racy by nature; for
// gauges, health output and tests).
func (c *Controller) InFlight(i int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight[i]
}

// Total returns the currently admitted count across all classes.
func (c *Controller) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// ClassStatus is one class's admission state, as reported by Status.
type ClassStatus struct {
	Name     string `json:"name"`
	Weight   int    `json:"weight"`
	Reserve  int    `json:"reserve"`
	InFlight int    `json:"in_flight"`
}

// Status returns a consistent snapshot of every class's admission state, in
// priority order.
func (c *Controller) Status() []ClassStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ClassStatus, len(c.classes))
	for i, cl := range c.classes {
		out[i] = ClassStatus{Name: cl.Name, Weight: cl.Weight, Reserve: c.reserve[i], InFlight: c.inflight[i]}
	}
	return out
}
