package ml

import (
	"math"
	"math/rand"
)

// KFold splits n sample indices into k shuffled folds and returns, for each
// fold, the (train, test) index pair. k is clamped to [2, n].
func KFold(n, k int, seed int64) [][2][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	out := make([][2][]int, k)
	for f := 0; f < k; f++ {
		var train []int
		for g := 0; g < k; g++ {
			if g != f {
				train = append(train, folds[g]...)
			}
		}
		out[f] = [2][]int{train, folds[f]}
	}
	return out
}

// CrossValidate returns the k-fold mean absolute error of the model family
// produced by build. The paper tunes all three candidate models with k-fold
// cross-validation (§IV-D).
func CrossValidate(build func() Regressor, X [][]float64, y []float64, k int, seed int64) (float64, error) {
	if err := validate(X, y); err != nil {
		return 0, err
	}
	var total float64
	var count int
	for _, fold := range KFold(len(X), k, seed) {
		train, test := fold[0], fold[1]
		if len(test) == 0 {
			continue
		}
		tx := make([][]float64, len(train))
		ty := make([]float64, len(train))
		for i, j := range train {
			tx[i] = X[j]
			ty[i] = y[j]
		}
		m := build()
		if err := m.Fit(tx, ty); err != nil {
			return 0, err
		}
		for _, j := range test {
			total += math.Abs(m.Predict(X[j]) - y[j])
			count++
		}
	}
	if count == 0 {
		return 0, ErrNoData
	}
	return total / float64(count), nil
}

// GridSearch evaluates every candidate builder with k-fold cross-validation
// and returns the index of the best (lowest MAE) candidate and its score.
func GridSearch(builders []func() Regressor, X [][]float64, y []float64, k int, seed int64) (int, float64, error) {
	best, bestScore := -1, math.Inf(1)
	for i, b := range builders {
		score, err := CrossValidate(b, X, y, k, seed)
		if err != nil {
			return 0, 0, err
		}
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return 0, 0, ErrNoData
	}
	return best, bestScore, nil
}
