package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synth builds a noisy nonlinear regression problem y = f(x) + noise.
func synth(n, d int, seed int64, noise float64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = rng.Float64()*4 - 2
		}
		y[i] = math.Sin(X[i][0]*2) + 0.5*X[i][1%d]*X[i][1%d] + noise*rng.NormFloat64()
	}
	return X, y
}

func mae(m Regressor, X [][]float64, y []float64) float64 {
	var s float64
	for i := range X {
		s += math.Abs(m.Predict(X[i]) - y[i])
	}
	return s / float64(len(X))
}

func TestStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Variance(xs) != 2 {
		t.Errorf("Variance = %v", Variance(xs))
	}
	if math.Abs(StdDev(xs)-math.Sqrt2) > 1e-12 {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect positive correlation: got %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect negative correlation: got %v", r)
	}
	if r := Pearson(xs, []float64{3, 3, 3, 3, 3}); r != 0 {
		t.Errorf("constant series: got %v", r)
	}
	if r := Pearson(xs, ys[:3]); r != 0 {
		t.Errorf("length mismatch: got %v", r)
	}
}

func TestPearsonBoundedQuick(t *testing.T) {
	check := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		for _, v := range append(xs[:n:n], ys[:n]...) {
			// Skip values whose squares overflow float64; Pearson makes no
			// promises under intermediate overflow.
			if math.IsNaN(v) || math.Abs(v) > 1e150 {
				return true
			}
		}
		r := Pearson(xs[:n], ys[:n])
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWeightedMedian(t *testing.T) {
	if v := WeightedMedian([]float64{1, 2, 100}, []float64{1, 1, 1}); v != 2 {
		t.Errorf("unweighted median = %v", v)
	}
	if v := WeightedMedian([]float64{1, 2, 100}, []float64{0.1, 0.1, 10}); v != 100 {
		t.Errorf("weighted median = %v", v)
	}
	if v := WeightedMedian(nil, nil); v != 0 {
		t.Errorf("empty median = %v", v)
	}
}

func TestTreeFitsExactlySeparableData(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{10, 10, 20, 20}
	tree := NewTree(TreeConfig{})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if got := tree.Predict(X[i]); got != y[i] {
			t.Errorf("Predict(%v) = %v, want %v", X[i], got, y[i])
		}
	}
}

func TestTreeDepthLimit(t *testing.T) {
	X, y := synth(200, 3, 1, 0)
	deep := NewTree(TreeConfig{})
	if err := deep.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	shallow := NewTree(TreeConfig{MaxDepth: 2})
	if err := shallow.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if shallow.Depth() > 2 {
		t.Errorf("depth %d exceeds limit 2", shallow.Depth())
	}
	if deep.Depth() <= shallow.Depth() {
		t.Errorf("unlimited tree (%d) not deeper than limited (%d)", deep.Depth(), shallow.Depth())
	}
	if mae(deep, X, y) > mae(shallow, X, y) {
		t.Error("deeper tree should fit training data at least as well")
	}
}

func TestTreeValidation(t *testing.T) {
	tree := NewTree(TreeConfig{})
	if err := tree.Fit(nil, nil); err == nil {
		t.Error("empty data accepted")
	}
	if err := tree.Fit([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := tree.Fit([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if err := tree.Fit([][]float64{{math.NaN()}}, []float64{1}); err == nil {
		t.Error("NaN feature accepted")
	}
}

func TestForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	X, y := synth(400, 4, 2, 0.3)
	testX, testY := synth(200, 4, 99, 0.3)

	tree := NewTree(TreeConfig{})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	forest := NewForest(ForestConfig{Trees: 60, Seed: 7})
	if err := forest.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	mt, mf := mae(tree, testX, testY), mae(forest, testX, testY)
	if mf >= mt {
		t.Errorf("forest MAE %.4f not better than single tree %.4f on held-out data", mf, mt)
	}
}

func TestForestDeterministicAcrossRuns(t *testing.T) {
	X, y := synth(150, 3, 3, 0.1)
	a := NewForest(ForestConfig{Trees: 20, Seed: 42})
	b := NewForest(ForestConfig{Trees: 20, Seed: 42})
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.5, -1, 1.5}
	if a.Predict(probe) != b.Predict(probe) {
		t.Error("same seed produced different forests")
	}
	c := NewForest(ForestConfig{Trees: 20, Seed: 43})
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if a.Predict(probe) == c.Predict(probe) {
		t.Error("different seeds produced identical forests (suspicious)")
	}
}

func TestForestPredictionWithinTargetHull(t *testing.T) {
	X, y := synth(300, 3, 4, 0.2)
	forest := NewForest(ForestConfig{Trees: 30, Seed: 1})
	if err := forest.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	check := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) {
			return true
		}
		p := forest.Predict([]float64{a, b, c})
		return p >= lo && p <= hi
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("tree-ensemble prediction escaped the training target hull:", err)
	}
}

func TestAdaBoostLearns(t *testing.T) {
	X, y := synth(300, 3, 5, 0.1)
	ab := NewAdaBoost(AdaBoostConfig{Estimators: 40, MaxDepth: 4, Seed: 3})
	if err := ab.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m := mae(ab, X, y); m > 0.5 {
		t.Errorf("AdaBoost training MAE %.3f too high", m)
	}
}

func TestAdaBoostLossVariants(t *testing.T) {
	X, y := synth(200, 2, 6, 0.1)
	for _, loss := range []string{"linear", "square", "exponential"} {
		ab := NewAdaBoost(AdaBoostConfig{Estimators: 20, Loss: loss, Seed: 4})
		if err := ab.Fit(X, y); err != nil {
			t.Fatalf("loss %s: %v", loss, err)
		}
		if m := mae(ab, X, y); m > 1 {
			t.Errorf("loss %s: MAE %.3f", loss, m)
		}
	}
}

func TestAdaBoostPerfectLearnerShortCircuit(t *testing.T) {
	// Exactly learnable data: boosting should stop early with one perfect tree.
	X := [][]float64{{0}, {1}, {2}, {3}, {4}, {5}}
	y := []float64{1, 1, 1, 5, 5, 5}
	ab := NewAdaBoost(AdaBoostConfig{Estimators: 50, MaxDepth: 3, Seed: 5})
	if err := ab.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if len(ab.trees) > 5 {
		t.Errorf("expected early stop, got %d rounds", len(ab.trees))
	}
	for i := range X {
		if got := ab.Predict(X[i]); got != y[i] {
			t.Errorf("Predict(%v) = %v, want %v", X[i], got, y[i])
		}
	}
}

func TestSVRFitsLinearTube(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 150
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := rng.Float64()*10 - 5
		X[i] = []float64{x}
		y[i] = 3*x + 1
	}
	svr := NewSVR(SVRConfig{C: 10, Epsilon: 0.05, Epochs: 300, Seed: 9})
	if err := svr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m := mae(svr, X, y); m > 1.5 {
		t.Errorf("SVR MAE on linear data %.3f too high", m)
	}
	if svr.SupportVectors() == 0 {
		t.Error("no support vectors after training")
	}
}

func TestSVRHandlesConstantFeatures(t *testing.T) {
	X := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []float64{1, 2, 3, 4}
	svr := NewSVR(SVRConfig{})
	if err := svr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := svr.Predict([]float64{2.5, 5})
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Errorf("prediction not finite: %v", p)
	}
}

func TestKFoldPartitions(t *testing.T) {
	folds := KFold(10, 3, 1)
	if len(folds) != 3 {
		t.Fatalf("%d folds", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		train, test := f[0], f[1]
		if len(train)+len(test) != 10 {
			t.Errorf("fold sizes %d+%d != 10", len(train), len(test))
		}
		inTrain := map[int]bool{}
		for _, i := range train {
			inTrain[i] = true
		}
		for _, i := range test {
			if inTrain[i] {
				t.Errorf("index %d in both train and test", i)
			}
			seen[i]++
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Errorf("index %d appears in %d test folds", i, seen[i])
		}
	}
}

func TestCrossValidateAndGridSearch(t *testing.T) {
	X, y := synth(200, 3, 10, 0.2)
	scoreGood, err := CrossValidate(func() Regressor { return NewForest(ForestConfig{Trees: 30, Seed: 2}) }, X, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	scoreBad, err := CrossValidate(func() Regressor { return NewTree(TreeConfig{MaxDepth: 1}) }, X, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if scoreGood >= scoreBad {
		t.Errorf("forest CV MAE %.3f not better than stump %.3f", scoreGood, scoreBad)
	}
	best, _, err := GridSearch([]func() Regressor{
		func() Regressor { return NewTree(TreeConfig{MaxDepth: 1}) },
		func() Regressor { return NewForest(ForestConfig{Trees: 30, Seed: 2}) },
	}, X, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best != 1 {
		t.Errorf("grid search picked %d, want the forest (1)", best)
	}
}

func TestRFRBeatsAdaBoostAndSVROnStepLikeTargets(t *testing.T) {
	// A miniature of the paper's Table III setting: targets are log error
	// bounds with near-plateau structure; RFR should win.
	rng := rand.New(rand.NewSource(20))
	n := 250
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		f1 := rng.Float64()
		f2 := rng.Float64()
		tcr := rng.Float64() * 100
		X[i] = []float64{f1, f2, tcr}
		y[i] = math.Log10(1e-4+1e-2*tcr*f1) + 0.05*rng.NormFloat64()
	}
	test := func(m Regressor) float64 {
		if err := m.Fit(X[:200], y[:200]); err != nil {
			t.Fatal(err)
		}
		var s float64
		for i := 200; i < n; i++ {
			s += math.Abs(m.Predict(X[i]) - y[i])
		}
		return s / 50
	}
	rfr := test(NewForest(ForestConfig{Trees: 60, Seed: 1}))
	ada := test(NewAdaBoost(AdaBoostConfig{Estimators: 30, Seed: 1}))
	svr := test(NewSVR(SVRConfig{Epochs: 150, Seed: 1}))
	if rfr >= ada && rfr >= svr {
		t.Errorf("RFR (%.4f) did not beat AdaBoost (%.4f) or SVR (%.4f)", rfr, ada, svr)
	}
}

func TestPermutationImportanceRanksSignalOverNoise(t *testing.T) {
	// y depends on feature 0 strongly, feature 1 weakly, feature 2 not at all.
	rng := rand.New(rand.NewSource(31))
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		y[i] = 5*X[i][0] + 0.5*X[i][1]
	}
	f := NewForest(ForestConfig{Trees: 40, Seed: 2})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp, err := PermutationImportance(f, X, y, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !(imp[0] > imp[1] && imp[1] > imp[2]) {
		t.Errorf("importances not ordered: %v", imp)
	}
	if imp[0] < 1 {
		t.Errorf("dominant feature importance %v too small", imp[0])
	}
	// In-sample noise splits give the useless feature a small but non-zero
	// score; it must stay well below the dominant feature's.
	if math.Abs(imp[2]) > 0.1*imp[0] {
		t.Errorf("noise feature importance %v too large vs dominant %v", imp[2], imp[0])
	}
}

func TestPermutationImportanceValidation(t *testing.T) {
	f := NewForest(ForestConfig{Trees: 5, Seed: 1})
	if _, err := PermutationImportance(f, nil, nil, 3, 1); err == nil {
		t.Error("empty data accepted")
	}
}

func TestSpearman(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	// Monotone nonlinear: Spearman must be exactly 1.
	ys := []float64{1, 8, 27, 64, 125}
	if r := Spearman(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("monotone cubic: Spearman = %v, want 1", r)
	}
	// Pearson on the same data is below 1.
	if p := Pearson(xs, ys); p >= 1-1e-9 {
		t.Errorf("Pearson on cubic = %v, expected < 1", p)
	}
	desc := []float64{10, 9, 1, 0.5, 0.1}
	if r := Spearman(xs, desc); math.Abs(r+1) > 1e-12 {
		t.Errorf("monotone decreasing: Spearman = %v, want -1", r)
	}
	if r := Spearman(xs, xs[:3]); r != 0 {
		t.Errorf("length mismatch: %v", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{5, 6, 6, 7}
	if r := Spearman(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("tied monotone: Spearman = %v, want 1", r)
	}
	rk := ranks([]float64{3, 1, 3, 2})
	want := []float64{3.5, 1, 3.5, 2}
	for i := range rk {
		if rk[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", rk, want)
		}
	}
}
