package ml

import "math/rand"

// PermutationImportance measures each feature's contribution to a trained
// model: the increase in mean absolute error when that feature's column is
// shuffled (breaking its relationship to the target) while the others stay
// intact. It is the model-side counterpart of the paper's Table II
// correlation analysis — a feature the model relies on shows a large error
// increase when permuted.
//
// Returned values are ΔMAE per feature (same order as the columns); larger
// means more important. Negative values (noise) are possible for useless
// features.
func PermutationImportance(m Regressor, X [][]float64, y []float64, repeats int, seed int64) ([]float64, error) {
	if err := validate(X, y); err != nil {
		return nil, err
	}
	if repeats <= 0 {
		repeats = 3
	}
	n, d := len(X), len(X[0])
	base := maeOf(m, X, y)
	rng := rand.New(rand.NewSource(seed))
	imp := make([]float64, d)

	perm := make([]int, n)
	row := make([]float64, d)
	for j := 0; j < d; j++ {
		var total float64
		for rep := 0; rep < repeats; rep++ {
			for i := range perm {
				perm[i] = i
			}
			rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
			var s float64
			for i := 0; i < n; i++ {
				copy(row, X[i])
				row[j] = X[perm[i]][j]
				e := m.Predict(row) - y[i]
				if e < 0 {
					e = -e
				}
				s += e
			}
			total += s / float64(n)
		}
		imp[j] = total/float64(repeats) - base
	}
	return imp, nil
}

func maeOf(m Regressor, X [][]float64, y []float64) float64 {
	var s float64
	for i := range X {
		e := m.Predict(X[i]) - y[i]
		if e < 0 {
			e = -e
		}
		s += e
	}
	return s / float64(len(X))
}
