package ml

import "testing"

func BenchmarkForestFit(b *testing.B) {
	X, y := synth(500, 6, 1, 0.2)
	for i := 0; i < b.N; i++ {
		f := NewForest(ForestConfig{Trees: 50, Seed: 1})
		if err := f.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	X, y := synth(500, 6, 1, 0.2)
	f := NewForest(ForestConfig{Trees: 50, Seed: 1})
	if err := f.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	probe := X[123]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(probe)
	}
}
