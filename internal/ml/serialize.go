package ml

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Serialisation uses exported mirror types so gob can reach tree internals
// without exporting them in the working API.

type treeDTO struct {
	Dim   int
	Nodes []nodeDTO
}

type nodeDTO struct {
	Feature     int
	Threshold   float64
	Value       float64
	Left, Right int
}

type forestDTO struct {
	Cfg   ForestConfig
	Trees []treeDTO
}

func (t *Tree) toDTO() treeDTO {
	d := treeDTO{Dim: t.dim, Nodes: make([]nodeDTO, len(t.nodes))}
	for i, n := range t.nodes {
		d.Nodes[i] = nodeDTO{Feature: n.feature, Threshold: n.threshold, Value: n.value, Left: n.left, Right: n.right}
	}
	return d
}

func treeFromDTO(d treeDTO) *Tree {
	t := &Tree{dim: d.Dim, nodes: make([]treeNode, len(d.Nodes))}
	for i, n := range d.Nodes {
		t.nodes[i] = treeNode{feature: n.Feature, threshold: n.Threshold, value: n.Value, left: n.Left, right: n.Right}
	}
	return t
}

// MarshalBinary implements encoding.BinaryMarshaler for a trained forest.
func (f *Forest) MarshalBinary() ([]byte, error) {
	dto := forestDTO{Cfg: f.cfg, Trees: make([]treeDTO, len(f.trees))}
	for i, t := range f.trees {
		if t == nil {
			return nil, fmt.Errorf("ml: forest has nil tree %d (not trained?)", i)
		}
		dto.Trees[i] = t.toDTO()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dto); err != nil {
		return nil, fmt.Errorf("ml: encode forest: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (f *Forest) UnmarshalBinary(data []byte) error {
	var dto forestDTO
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&dto); err != nil {
		return fmt.Errorf("ml: decode forest: %w", err)
	}
	f.cfg = dto.Cfg
	f.trees = make([]*Tree, len(dto.Trees))
	for i, td := range dto.Trees {
		f.trees[i] = treeFromDTO(td)
	}
	return nil
}
