// Package ml is a small, deterministic, stdlib-only machine-learning
// substrate providing the three regressors the paper compares for FXRZ
// (random forest, AdaBoost.R2, ε-SVR), CART regression trees, k-fold
// cross-validation with grid search, and the correlation statistics used for
// feature selection (Table II).
package ml

import (
	"errors"
	"math"
)

// ErrNoData reports an empty or inconsistent training set.
var ErrNoData = errors.New("ml: empty or inconsistent training data")

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson product-moment correlation coefficient between
// xs and ys, the statistic Table II uses to rank features. It returns 0 when
// either series is constant or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// validate checks a design matrix / target pair.
func validate(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return ErrNoData
	}
	d := len(X[0])
	if d == 0 {
		return ErrNoData
	}
	for _, row := range X {
		if len(row) != d {
			return ErrNoData
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return errors.New("ml: non-finite feature value")
			}
		}
	}
	for _, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("ml: non-finite target value")
		}
	}
	return nil
}

// WeightedMedian returns the value whose cumulative weight reaches half of
// the total, over (values, weights) pairs; AdaBoost.R2 combines its learners
// with it. Ties broken toward the lower value.
func WeightedMedian(values, weights []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by value: learner counts are small.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && values[idx[j]] < values[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	var cum float64
	for _, i := range idx {
		cum += weights[i]
		if cum >= total/2 {
			return values[i]
		}
	}
	return values[idx[len(idx)-1]]
}

// Spearman returns the Spearman rank correlation coefficient: Pearson
// correlation of the two series' ranks. It is robust to monotone nonlinear
// relationships (e.g. the exponential-looking feature↔ratio relations in
// scientific data), complementing Pearson in feature analysis. Ties receive
// averaged ranks.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns average ranks (1-based) with ties averaged.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by value: stats inputs here are small (dozens of
	// snapshots); avoids importing sort for a hot path that is not hot.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && xs[idx[j]] < xs[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}
