package ml

import (
	"math"
	"math/rand"
)

// SVRConfig controls the ε-insensitive support vector regressor with an RBF
// kernel. Training uses the kernelised stochastic subgradient method (NORMA,
// Kivinen–Smola–Williamson 2004), which optimises the same regularised
// ε-insensitive objective as classic SMO-trained SVR.
type SVRConfig struct {
	// C is the regularisation trade-off (default 1).
	C float64
	// Epsilon is the insensitive-tube half width (default 0.1).
	Epsilon float64
	// Gamma is the RBF kernel width exp(-γ‖x-z‖²); 0 selects 1/d after
	// feature standardisation.
	Gamma float64
	// Epochs over the training set (default 200).
	Epochs int
	// Seed makes the stochastic updates deterministic.
	Seed int64
}

// SVR is an RBF-kernel ε-support-vector regressor.
type SVR struct {
	cfg   SVRConfig
	x     [][]float64
	beta  []float64
	bias  float64
	mean  []float64
	scale []float64
	yMean float64
	yStd  float64
	gamma float64
}

// NewSVR returns an untrained SVR.
func NewSVR(cfg SVRConfig) *SVR {
	if cfg.C <= 0 {
		cfg.C = 1
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.1
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 200
	}
	return &SVR{cfg: cfg}
}

// Fit implements Regressor. Features and targets are standardised
// internally; ε applies in standardised target units, matching common SVR
// practice.
func (s *SVR) Fit(X [][]float64, y []float64) error {
	if err := validate(X, y); err != nil {
		return err
	}
	n, d := len(X), len(X[0])
	s.mean = make([]float64, d)
	s.scale = make([]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, n)
		for i := range X {
			col[i] = X[i][j]
		}
		s.mean[j] = Mean(col)
		s.scale[j] = StdDev(col)
		if s.scale[j] == 0 {
			s.scale[j] = 1
		}
	}
	s.x = make([][]float64, n)
	for i := range X {
		s.x[i] = s.standardize(X[i])
	}
	s.yMean = Mean(y)
	s.yStd = StdDev(y)
	if s.yStd == 0 {
		s.yStd = 1
	}
	ys := make([]float64, n)
	for i := range y {
		ys[i] = (y[i] - s.yMean) / s.yStd
	}
	s.gamma = s.cfg.Gamma
	if s.gamma <= 0 {
		s.gamma = 1 / float64(d)
	}

	s.beta = make([]float64, n)
	s.bias = 0
	lambda := 1 / s.cfg.C
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	step := 0
	for epoch := 0; epoch < s.cfg.Epochs; epoch++ {
		perm := rng.Perm(n)
		for _, i := range perm {
			step++
			eta := 1 / (lambda * float64(step+10))
			f := s.rawPredict(s.x[i])
			r := f - ys[i]
			// L2 shrinkage of the kernel expansion.
			decay := 1 - eta*lambda
			if decay < 0 {
				decay = 0
			}
			for k := range s.beta {
				s.beta[k] *= decay
			}
			// ε-insensitive subgradient.
			if r > s.cfg.Epsilon {
				s.beta[i] -= eta
				s.bias -= eta * 0.1
			} else if r < -s.cfg.Epsilon {
				s.beta[i] += eta
				s.bias += eta * 0.1
			}
		}
	}
	return nil
}

func (s *SVR) standardize(x []float64) []float64 {
	z := make([]float64, len(s.mean))
	for j := range z {
		v := 0.0
		if j < len(x) {
			v = x[j]
		}
		z[j] = (v - s.mean[j]) / s.scale[j]
	}
	return z
}

func (s *SVR) kernel(a, b []float64) float64 {
	var d2 float64
	for j := range a {
		d := a[j] - b[j]
		d2 += d * d
	}
	return math.Exp(-s.gamma * d2)
}

func (s *SVR) rawPredict(z []float64) float64 {
	f := s.bias
	for i, b := range s.beta {
		if b != 0 {
			f += b * s.kernel(s.x[i], z)
		}
	}
	return f
}

// Predict implements Regressor.
func (s *SVR) Predict(x []float64) float64 {
	if len(s.beta) == 0 {
		return 0
	}
	return s.rawPredict(s.standardize(x))*s.yStd + s.yMean
}

// SupportVectors reports how many expansion coefficients are non-zero.
func (s *SVR) SupportVectors() int {
	n := 0
	for _, b := range s.beta {
		if b != 0 {
			n++
		}
	}
	return n
}
