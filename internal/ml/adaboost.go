package ml

import (
	"math"
	"math/rand"
)

// AdaBoostConfig controls the AdaBoost.R2 regressor (Drucker, 1997), the
// meta-estimator the paper evaluates against the random forest in Table III.
type AdaBoostConfig struct {
	// Estimators is the maximum number of boosting rounds (default 50).
	Estimators int
	// MaxDepth limits each weak regression tree (default 3).
	MaxDepth int
	// Loss selects the per-sample loss normalisation: "linear", "square" or
	// "exponential" (default "linear").
	Loss string
	// Seed makes weighted resampling deterministic.
	Seed int64
}

// AdaBoost is an AdaBoost.R2 ensemble of shallow CART trees combined by
// weighted median.
type AdaBoost struct {
	cfg    AdaBoostConfig
	trees  []*Tree
	logBet []float64 // ln(1/β_t) per kept round
}

// NewAdaBoost returns an untrained AdaBoost.R2 regressor.
func NewAdaBoost(cfg AdaBoostConfig) *AdaBoost {
	if cfg.Estimators <= 0 {
		cfg.Estimators = 50
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 3
	}
	if cfg.Loss == "" {
		cfg.Loss = "linear"
	}
	return &AdaBoost{cfg: cfg}
}

// Fit implements Regressor with the AdaBoost.R2 algorithm: each round fits a
// weak tree on a weight-proportional resample, computes the normalised loss
// l_i of every sample, stops if the weighted average loss exceeds 0.5, and
// otherwise reweights samples by β^(1-l_i) with β = L̄/(1-L̄).
func (a *AdaBoost) Fit(X [][]float64, y []float64) error {
	if err := validate(X, y); err != nil {
		return err
	}
	n := len(X)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	rng := rand.New(rand.NewSource(a.cfg.Seed))
	a.trees = a.trees[:0]
	a.logBet = a.logBet[:0]

	cdf := make([]float64, n)
	bx := make([][]float64, n)
	by := make([]float64, n)
	preds := make([]float64, n)
	losses := make([]float64, n)

	for round := 0; round < a.cfg.Estimators; round++ {
		// Weighted bootstrap resample via inverse-CDF sampling.
		var cum float64
		for i, wi := range w {
			cum += wi
			cdf[i] = cum
		}
		for i := 0; i < n; i++ {
			r := rng.Float64() * cum
			j := searchCDF(cdf, r)
			bx[i] = X[j]
			by[i] = y[j]
		}
		tree := NewTree(TreeConfig{MaxDepth: a.cfg.MaxDepth, MinLeaf: 1, Seed: a.cfg.Seed + int64(round)})
		if err := tree.Fit(bx, by); err != nil {
			return err
		}
		// Normalised per-sample loss on the full training set.
		var maxErr float64
		for i := range X {
			preds[i] = tree.Predict(X[i])
			e := math.Abs(preds[i] - y[i])
			if e > maxErr {
				maxErr = e
			}
		}
		if maxErr == 0 {
			// Perfect learner: keep it with a large weight and stop.
			a.trees = append(a.trees, tree)
			a.logBet = append(a.logBet, math.Log(1e9))
			break
		}
		var avgLoss float64
		for i := range X {
			l := math.Abs(preds[i]-y[i]) / maxErr
			switch a.cfg.Loss {
			case "square":
				l = l * l
			case "exponential":
				l = 1 - math.Exp(-l)
			}
			losses[i] = l
			avgLoss += w[i] * l
		}
		var wsum float64
		for _, wi := range w {
			wsum += wi
		}
		avgLoss /= wsum
		if avgLoss >= 0.5 {
			if len(a.trees) == 0 {
				// Keep one learner so the model is usable at all.
				a.trees = append(a.trees, tree)
				a.logBet = append(a.logBet, 1e-3)
			}
			break
		}
		beta := avgLoss / (1 - avgLoss)
		a.trees = append(a.trees, tree)
		a.logBet = append(a.logBet, math.Log(1/beta))
		for i := range w {
			w[i] *= math.Pow(beta, 1-losses[i])
		}
	}
	if len(a.trees) == 0 {
		return ErrNoData
	}
	return nil
}

// Predict implements Regressor: the weighted median of the rounds'
// predictions, with weights ln(1/β_t).
func (a *AdaBoost) Predict(x []float64) float64 {
	if len(a.trees) == 0 {
		return 0
	}
	vals := make([]float64, len(a.trees))
	for i, t := range a.trees {
		vals[i] = t.Predict(x)
	}
	return WeightedMedian(vals, a.logBet)
}

// searchCDF returns the first index whose cumulative value is >= r.
func searchCDF(cdf []float64, r float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
