package ml

import (
	"math/rand"
	"runtime"
	"sync"
)

// ForestConfig controls the random forest regressor the paper adopts for
// FXRZ (Table III shows it beating AdaBoost and SVR on this problem).
type ForestConfig struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// MaxDepth limits each tree (0 = unlimited).
	MaxDepth int
	// MinLeaf is the per-tree minimum leaf size (default 1).
	MinLeaf int
	// MaxFeatures per split; 0 selects max(1, d/3), the regression default.
	MaxFeatures int
	// Seed makes training deterministic.
	Seed int64
}

// Forest is a bootstrap-aggregated ensemble of CART trees.
type Forest struct {
	cfg   ForestConfig
	trees []*Tree
}

// NewForest returns an untrained random forest.
func NewForest(cfg ForestConfig) *Forest {
	if cfg.Trees <= 0 {
		cfg.Trees = 100
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	return &Forest{cfg: cfg}
}

// Fit implements Regressor: each tree is grown on a bootstrap resample with
// per-split feature subsampling. Trees are trained in parallel; the
// bootstrap draws come from per-tree seeded generators, so results are
// deterministic regardless of parallelism.
func (f *Forest) Fit(X [][]float64, y []float64) error {
	if err := validate(X, y); err != nil {
		return err
	}
	d := len(X[0])
	maxFeat := f.cfg.MaxFeatures
	if maxFeat <= 0 {
		maxFeat = d / 3
		if maxFeat < 1 {
			maxFeat = 1
		}
	}
	f.trees = make([]*Tree, f.cfg.Trees)

	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	errs := make([]error, f.cfg.Trees)
	for t := 0; t < f.cfg.Trees; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(f.cfg.Seed + int64(t)*7919))
			n := len(X)
			bx := make([][]float64, n)
			by := make([]float64, n)
			for i := 0; i < n; i++ {
				j := rng.Intn(n)
				bx[i] = X[j]
				by[i] = y[j]
			}
			tree := NewTree(TreeConfig{
				MaxDepth:    f.cfg.MaxDepth,
				MinLeaf:     f.cfg.MinLeaf,
				MaxFeatures: maxFeat,
				Seed:        f.cfg.Seed + int64(t)*104729,
			})
			errs[t] = tree.Fit(bx, by)
			f.trees[t] = tree
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Predict implements Regressor: the mean of the trees' predictions.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}
