package ml

import (
	"math/rand"
	"sort"
)

// Regressor is the common interface of all models in this package.
type Regressor interface {
	// Fit trains the model on design matrix X (rows are samples) and
	// targets y.
	Fit(X [][]float64, y []float64) error
	// Predict returns the model output for one feature vector.
	Predict(x []float64) float64
}

// TreeConfig controls CART regression tree growth.
type TreeConfig struct {
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (default 1).
	MinLeaf int
	// MaxFeatures is the number of features considered per split; 0 means
	// all features (random forests pass ~d/3).
	MaxFeatures int
	// Seed drives the feature subsampling; trees are fully deterministic
	// given the seed.
	Seed int64
}

// Tree is a CART regression tree minimizing within-node variance.
type Tree struct {
	cfg   TreeConfig
	nodes []treeNode
	dim   int
}

type treeNode struct {
	// feature < 0 marks a leaf carrying value; otherwise the split is
	// x[feature] <= threshold → left, else right.
	feature     int
	threshold   float64
	value       float64
	left, right int
}

// NewTree returns an untrained tree with the given configuration.
func NewTree(cfg TreeConfig) *Tree {
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	return &Tree{cfg: cfg}
}

// Fit implements Regressor.
func (t *Tree) Fit(X [][]float64, y []float64) error {
	if err := validate(X, y); err != nil {
		return err
	}
	t.dim = len(X[0])
	t.nodes = t.nodes[:0]
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(t.cfg.Seed))
	t.grow(X, y, idx, 1, rng)
	return nil
}

// grow builds the subtree over the samples in idx and returns its node index.
func (t *Tree) grow(X [][]float64, y []float64, idx []int, depth int, rng *rand.Rand) int {
	node := len(t.nodes)
	t.nodes = append(t.nodes, treeNode{feature: -1})

	mean, sse := meanSSE(y, idx)
	t.nodes[node].value = mean
	if sse == 0 || len(idx) < 2*t.cfg.MinLeaf || (t.cfg.MaxDepth > 0 && depth > t.cfg.MaxDepth) {
		return node
	}

	feat, thr, ok := t.bestSplit(X, y, idx, rng)
	if !ok {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.cfg.MinLeaf || len(right) < t.cfg.MinLeaf {
		return node
	}
	l := t.grow(X, y, left, depth+1, rng)
	r := t.grow(X, y, right, depth+1, rng)
	t.nodes[node].feature = feat
	t.nodes[node].threshold = thr
	t.nodes[node].left = l
	t.nodes[node].right = r
	return node
}

// bestSplit scans a (possibly random) subset of features for the variance-
// minimizing threshold using the classic sorted single-pass formulation.
func (t *Tree) bestSplit(X [][]float64, y []float64, idx []int, rng *rand.Rand) (int, float64, bool) {
	feats := make([]int, t.dim)
	for i := range feats {
		feats[i] = i
	}
	limit := t.dim
	if t.cfg.MaxFeatures > 0 && t.cfg.MaxFeatures < t.dim {
		rng.Shuffle(len(feats), func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		limit = t.cfg.MaxFeatures
	}

	n := len(idx)
	order := make([]int, n)
	bestGain := 0.0
	bestFeat, bestThr := -1, 0.0
	_, parentSSE := meanSSE(y, idx)

	for fi, f := range feats {
		// Honour MaxFeatures, but — like scikit-learn — keep inspecting
		// further features until at least one valid split has been found, so
		// constant features in the subset cannot silently truncate the tree.
		if fi >= limit && bestFeat >= 0 {
			break
		}
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		// Prefix sums: split after position k puts order[0..k] on the left.
		var sumL, sumSqL float64
		var sumR, sumSqR float64
		for _, i := range order {
			sumR += y[i]
			sumSqR += y[i] * y[i]
		}
		for k := 0; k < n-1; k++ {
			v := y[order[k]]
			sumL += v
			sumSqL += v * v
			sumR -= v
			sumSqR -= v * v
			if X[order[k]][f] == X[order[k+1]][f] {
				continue // cannot split between equal values
			}
			nl, nr := float64(k+1), float64(n-k-1)
			if int(nl) < t.cfg.MinLeaf || int(nr) < t.cfg.MinLeaf {
				continue
			}
			sseL := sumSqL - sumL*sumL/nl
			sseR := sumSqR - sumR*sumR/nr
			gain := parentSSE - (sseL + sseR)
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThr = (X[order[k]][f] + X[order[k+1]][f]) / 2
			}
		}
	}
	return bestFeat, bestThr, bestFeat >= 0
}

// Predict implements Regressor. An untrained tree predicts 0.
func (t *Tree) Predict(x []float64) float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	n := 0
	for {
		nd := t.nodes[n]
		if nd.feature < 0 {
			return nd.value
		}
		if nd.feature < len(x) && x[nd.feature] <= nd.threshold {
			n = nd.left
		} else {
			n = nd.right
		}
	}
}

// Depth returns the height of the trained tree (0 for a stump/leaf).
func (t *Tree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var walk func(n int) int
	walk = func(n int) int {
		nd := t.nodes[n]
		if nd.feature < 0 {
			return 0
		}
		l, r := walk(nd.left), walk(nd.right)
		if r > l {
			l = r
		}
		return l + 1
	}
	return walk(0)
}

func meanSSE(y []float64, idx []int) (mean, sse float64) {
	if len(idx) == 0 {
		return 0, 0
	}
	var sum, sumSq float64
	for _, i := range idx {
		sum += y[i]
		sumSq += y[i] * y[i]
	}
	n := float64(len(idx))
	mean = sum / n
	sse = sumSq - sum*sum/n
	if sse < 0 {
		sse = 0 // numeric noise
	}
	return mean, sse
}
