package roi

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fxrz-go/fxrz/internal/brick"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/sz"
	"github.com/fxrz-go/fxrz/internal/zfp"
)

func testField(t testing.TB, dims ...int) *grid.Field {
	t.Helper()
	f := grid.MustNew("roi-test", dims...)
	rng := rand.New(rand.NewSource(5))
	for i := range f.Data {
		f.Data[i] = float32(math.Cos(float64(i)*0.03)) + 0.1*rng.Float32()
	}
	return f
}

func TestWrapUnwrapRoundTrip(t *testing.T) {
	inner := []byte{0x2F, 1, 2, 3}
	index := []byte{9, 9}
	blob := Wrap(inner, index)
	if !IsIndexed(blob) {
		t.Fatal("wrapped blob not recognised as indexed")
	}
	gi, gx, err := Unwrap(blob)
	if err != nil {
		t.Fatal(err)
	}
	if string(gi) != string(inner) || string(gx) != string(index) {
		t.Fatalf("round trip mismatch: %v %v", gi, gx)
	}
	// Corrupt variants must error, not panic.
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0xFF
		_, _, _ = Unwrap(mut)
	}
	if _, _, err := Unwrap(blob[:len(blob)-1]); err == nil {
		t.Error("truncated container accepted")
	}
	if _, _, err := Unwrap(append(append([]byte(nil), blob...), 1)); err == nil {
		t.Error("container with trailer accepted")
	}
}

func TestBuildIdempotent(t *testing.T) {
	f := testField(t, 12, 10, 8)
	blob, err := zfp.New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	once, err := Build(blob)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Build(once)
	if err != nil {
		t.Fatal(err)
	}
	if &twice[0] != &once[0] || len(twice) != len(once) {
		t.Fatal("Build of an indexed container is not a no-op")
	}
	inner, _, err := Unwrap(once)
	if err != nil {
		t.Fatal(err)
	}
	if string(inner) != string(blob) {
		t.Fatal("inner blob altered by indexing")
	}
}

func TestDecodeRegionAllContainers(t *testing.T) {
	f := testField(t, 16, 12, 10)
	lo, hi := []int{5, 3, 2}, []int{13, 9, 8}
	blobs := map[string][]byte{}
	szBlob, err := sz.New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	zfpBlob, err := zfp.New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	sz2Blob, err := sz.NewV2().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	blobs["sz-raw"] = szBlob
	blobs["zfp-raw"] = zfpBlob
	blobs["sz2-raw"] = sz2Blob
	for _, name := range []string{"sz", "zfp", "sz2"} {
		ix, err := Build(blobs[name+"-raw"])
		if err != nil {
			t.Fatalf("index %s: %v", name, err)
		}
		blobs[name+"-indexed"] = ix
	}
	st, err := brick.Build(sz.New(), f, 8, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	blobs["brick"] = st.Marshal()

	for name, blob := range blobs {
		got, err := DecodeRegion(blob, lo, hi, 2)
		if err != nil {
			t.Fatalf("%s: DecodeRegion: %v", name, err)
		}
		var full *grid.Field
		if name == "brick" {
			full, err = st.ReadAll()
		} else {
			var inner []byte
			inner, err = Inner(blob)
			if err == nil {
				var c interface {
					Decompress([]byte) (*grid.Field, error)
				}
				c, err = ResolveCodec(inner[0])
				if err == nil {
					full, err = c.Decompress(inner)
				}
			}
		}
		if err != nil {
			t.Fatalf("%s: full decode: %v", name, err)
		}
		want, err := grid.SliceRegion(full, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("%s: sample %d: %v != %v", name, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestDecodeRegionRejectsBadRegion(t *testing.T) {
	f := testField(t, 8, 8)
	blob, err := zfp.New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRegion(blob, []int{0}, []int{8}, 1); err == nil {
		t.Error("rank mismatch accepted")
	}
	if _, err := DecodeRegion(blob, []int{0, 0}, []int{9, 8}, 1); err == nil {
		t.Error("out-of-bounds region accepted")
	}
}

func TestParseRegion(t *testing.T) {
	lo, hi, err := ParseRegion("0:64, 128:192,32:48")
	if err != nil {
		t.Fatal(err)
	}
	wantLo, wantHi := []int{0, 128, 32}, []int{64, 192, 48}
	for d := range wantLo {
		if lo[d] != wantLo[d] || hi[d] != wantHi[d] {
			t.Fatalf("parsed %v:%v, want %v:%v", lo, hi, wantLo, wantHi)
		}
	}
	if got := FormatRegion(lo, hi); got != "0:64,128:192,32:48" {
		t.Fatalf("FormatRegion = %q", got)
	}
	for _, bad := range []string{"", "5", "5:", ":5", "a:b", "3:3", "-1:4", "1:2,3:4,5:6,7:8,9:10"} {
		if _, _, err := ParseRegion(bad); err == nil {
			t.Errorf("ParseRegion(%q) accepted", bad)
		}
	}
}

func TestReaderAtMatchesDecode(t *testing.T) {
	f := testField(t, 11, 9, 13)
	for _, mk := range []struct {
		name string
		blob func() []byte
	}{
		{"zfp-indexed", func() []byte {
			b, err := zfp.New().Compress(f, 1e-3)
			if err != nil {
				t.Fatal(err)
			}
			ix, err := Build(b)
			if err != nil {
				t.Fatal(err)
			}
			return ix
		}},
		{"sz-raw", func() []byte {
			b, err := sz.New().Compress(f, 1e-3)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
	} {
		blob := mk.blob()
		r, err := NewReader(blob)
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		inner, err := Inner(blob)
		if err != nil {
			t.Fatal(err)
		}
		c, err := ResolveCodec(inner[0])
		if err != nil {
			t.Fatal(err)
		}
		full, err := c.Decompress(inner)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for q := 0; q < 200; q++ {
			z, y, x := rng.Intn(11), rng.Intn(9), rng.Intn(13)
			got, err := r.At(z, y, x)
			if err != nil {
				t.Fatalf("%s: At(%d,%d,%d): %v", mk.name, z, y, x, err)
			}
			if want := full.At(z, y, x); math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("%s: At(%d,%d,%d) = %v, want %v", mk.name, z, y, x, got, want)
			}
		}
		if _, err := r.At(11, 0, 0); err == nil {
			t.Errorf("%s: out-of-range At accepted", mk.name)
		}
		if _, err := r.At(1, 1); err == nil {
			t.Errorf("%s: rank-mismatched At accepted", mk.name)
		}
	}
}

// TestReaderAtZeroAlloc pins the acceptance criterion: once the blocks under
// a query region are warm, At performs zero heap allocations per call.
func TestReaderAtZeroAlloc(t *testing.T) {
	f := testField(t, 16, 16, 16)
	blob, err := zfp.New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := Build(blob)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(indexed)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the blocks covering the query region.
	for z := 4; z < 12; z++ {
		for y := 4; y < 12; y++ {
			for x := 4; x < 12; x++ {
				if _, err := r.At(z, y, x); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	var sink float32
	allocs := testing.AllocsPerRun(200, func() {
		for z := 4; z < 12; z++ {
			v, err := r.At(z, 7, z)
			if err != nil {
				t.Fatal(err)
			}
			sink += v
		}
	})
	if allocs != 0 {
		t.Fatalf("Reader.At allocates %v per warm run, want 0", allocs)
	}
	_ = sink
}
