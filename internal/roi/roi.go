// Package roi implements region-of-interest partial decode on top of the
// codec streams: an indexed container format that carries a codec blob
// together with the per-block/per-tile offset index its codec needs to seek,
// and a DecodeRegion dispatcher that decodes only the part of a stream
// intersecting a requested subvolume.
//
// # Container format
//
//	byte    magic (compress.MagicIndexed, 0xC1)
//	byte    version (1)
//	uvarint inner length
//	inner   — the codec blob, byte-identical to what the codec wrote
//	uvarint index length
//	index   — codec-specific (see zfp.BuildRegionIndex, sz.BuildRegionIndex);
//	          empty for codecs that region-decode by full decode + slice
//	u32le   CRC-32C over inner then index
//
// Because the inner blob is untouched, full-field decode of an indexed
// container is exactly the pre-existing decode path, and blobs written
// before the index existed (raw codec magic) keep decoding unchanged. The
// checksum binds the index to the stream it was built from: the index is
// derived data the codecs trust for seeking (sz seed planes in particular
// feed straight into reconstruction), so a container whose index no longer
// matches its inner blob must fail loudly rather than decode regions that
// silently diverge from the full decode.
package roi

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"github.com/fxrz-go/fxrz/internal/brick"
	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/fpzip"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/mgard"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/sz"
	"github.com/fxrz-go/fxrz/internal/zfp"
)

// Version is the indexed-container format version.
const Version = 1

// castagnoli is the CRC-32C table for the container checksum (hardware
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// IsIndexed reports whether blob is an indexed container.
func IsIndexed(blob []byte) bool {
	return len(blob) >= 2 && blob[0] == compress.MagicIndexed
}

// Wrap frames an inner codec blob and its index payload as an indexed
// container.
func Wrap(inner, index []byte) []byte {
	out := make([]byte, 0, 2+binary.MaxVarintLen64*2+len(inner)+len(index)+4)
	out = append(out, compress.MagicIndexed, Version)
	out = binary.AppendUvarint(out, uint64(len(inner)))
	out = append(out, inner...)
	out = binary.AppendUvarint(out, uint64(len(index)))
	out = append(out, index...)
	sum := crc32.Update(crc32.Checksum(inner, castagnoli), castagnoli, index)
	return binary.LittleEndian.AppendUint32(out, sum)
}

// Unwrap splits an indexed container into the inner codec blob and the index
// payload.
func Unwrap(blob []byte) (inner, index []byte, err error) {
	if len(blob) < 2 || blob[0] != compress.MagicIndexed {
		return nil, nil, fmt.Errorf("roi: %w: not an indexed container", compress.ErrCorrupt)
	}
	if blob[1] != Version {
		return nil, nil, fmt.Errorf("roi: %w: container version %d, want %d", compress.ErrCorrupt, blob[1], Version)
	}
	rest := blob[2:]
	n, k := binary.Uvarint(rest)
	if k <= 0 || uint64(len(rest)-k) < n || n == 0 {
		return nil, nil, fmt.Errorf("roi: %w: inner length", compress.ErrCorrupt)
	}
	inner = rest[k : k+int(n) : k+int(n)]
	rest = rest[k+int(n):]
	m, k := binary.Uvarint(rest)
	if k <= 0 || len(rest)-k < 4 || uint64(len(rest)-k-4) != m {
		return nil, nil, fmt.Errorf("roi: %w: index length", compress.ErrCorrupt)
	}
	index = rest[k : k+int(m) : k+int(m)]
	want := binary.LittleEndian.Uint32(rest[k+int(m):])
	if got := crc32.Update(crc32.Checksum(inner, castagnoli), castagnoli, index); got != want {
		return nil, nil, fmt.Errorf("roi: %w: container checksum mismatch", compress.ErrCorrupt)
	}
	return inner, index, nil
}

// ResolveCodec resolves a codec from its stream magic byte — the resolver
// brick.UnmarshalAuto and brick.OpenSet take when the codec is not known out
// of band.
func ResolveCodec(magic byte) (compress.Compressor, error) {
	switch magic {
	case compress.MagicSZ:
		return sz.New(), nil
	case compress.MagicSZ2:
		return sz.NewV2(), nil
	case compress.MagicZFP:
		return zfp.New(), nil
	case compress.MagicFPZIP:
		return fpzip.New(), nil
	case compress.MagicMGARD:
		return mgard.New(), nil
	}
	return nil, fmt.Errorf("roi: unrecognised stream (magic 0x%02x)", magic)
}

// Build wraps a codec blob into an indexed container, constructing the
// codec's region index (one full skim/decode). Codecs without a seekable
// layout get an empty index — DecodeRegion then falls back to full decode +
// slice for them. Building is idempotent: an already-indexed container is
// returned unchanged.
func Build(blob []byte) ([]byte, error) {
	if len(blob) == 0 {
		return nil, fmt.Errorf("roi: empty stream")
	}
	if IsIndexed(blob) {
		return blob, nil
	}
	defer obs.Span("roi/build_index")()
	var index []byte
	var err error
	switch blob[0] {
	case compress.MagicZFP:
		index, err = zfp.BuildRegionIndex(blob)
	case compress.MagicSZ:
		index, err = sz.BuildRegionIndex(blob)
	case compress.MagicSZ2, compress.MagicFPZIP, compress.MagicMGARD:
		// Sequential shared-state streams: no seekable block structure.
	default:
		return nil, fmt.Errorf("roi: unrecognised stream (magic 0x%02x)", blob[0])
	}
	if err != nil {
		return nil, err
	}
	return Wrap(blob, index), nil
}

// Inner returns the codec blob a container carries: the inner blob of an
// indexed container, or blob itself when it is a raw codec stream.
func Inner(blob []byte) ([]byte, error) {
	if !IsIndexed(blob) {
		return blob, nil
	}
	inner, _, err := Unwrap(blob)
	return inner, err
}

// DecodeRegion decodes the half-open region [lo, hi) of any supported
// container: an indexed container, a raw codec blob (no-index fallback
// paths), or a marshaled brick store. workers bounds the fan-out of the
// full-decode fallback paths; the seeking paths (zfp blocks, sz chunked
// slabs) touch so little of the stream that they stay serial. Output samples
// are bit-identical to the corresponding slice of a full decode at any
// worker count.
func DecodeRegion(blob []byte, lo, hi []int, workers int) (*grid.Field, error) {
	if len(blob) == 0 {
		return nil, fmt.Errorf("roi: empty stream")
	}
	if brick.IsStore(blob) {
		st, err := brick.UnmarshalAuto(ResolveCodec, blob)
		if err != nil {
			return nil, err
		}
		if err := grid.CheckRegion(st.Dims(), lo, hi); err != nil {
			return nil, fmt.Errorf("roi: %w", err)
		}
		shape := make([]int, len(lo))
		for d := range shape {
			shape[d] = hi[d] - lo[d]
		}
		return st.ReadRegion(lo, shape)
	}
	inner, index := blob, []byte(nil)
	if IsIndexed(blob) {
		var err error
		if inner, index, err = Unwrap(blob); err != nil {
			return nil, err
		}
	}
	if len(inner) == 0 {
		return nil, fmt.Errorf("roi: %w: empty inner stream", compress.ErrCorrupt)
	}
	switch inner[0] {
	case compress.MagicZFP:
		return zfp.DecompressRegion(inner, index, lo, hi)
	case compress.MagicSZ:
		return sz.DecompressRegion(inner, index, lo, hi)
	case compress.MagicSZ2, compress.MagicFPZIP, compress.MagicMGARD:
		return decodeFullAndSlice(inner, lo, hi, workers)
	}
	return nil, fmt.Errorf("roi: unrecognised stream (magic 0x%02x)", inner[0])
}

// decodeFullAndSlice is the fallback for codecs whose streams have no
// seekable structure (sz2's per-block predictor selection shares sequential
// reconstruction state; fpzip and mgard are whole-stream transforms).
func decodeFullAndSlice(inner []byte, lo, hi []int, workers int) (*grid.Field, error) {
	c, err := ResolveCodec(inner[0])
	if err != nil {
		return nil, err
	}
	f, err := compress.WithWorkers(c, workers).Decompress(inner)
	if err != nil {
		return nil, err
	}
	out, err := grid.SliceRegion(f, lo, hi)
	if err != nil {
		return nil, fmt.Errorf("roi: %w", err)
	}
	return out, nil
}

// ParseRegion parses the textual region syntax shared by `fxrz unpack
// -region` and the serve layer's region parameter: comma-separated
// half-open per-dimension ranges "lo0:hi0,lo1:hi1,...", slowest dimension
// first, e.g. "0:64,128:192,32:48".
func ParseRegion(s string) (lo, hi []int, err error) {
	parts := strings.Split(s, ",")
	if len(parts) == 0 || len(parts) > grid.MaxDims {
		return nil, nil, fmt.Errorf("roi: region %q must have 1..%d ranges", s, grid.MaxDims)
	}
	for _, p := range parts {
		a, b, ok := strings.Cut(strings.TrimSpace(p), ":")
		if !ok {
			return nil, nil, fmt.Errorf("roi: range %q is not of the form lo:hi", p)
		}
		l, err := strconv.Atoi(strings.TrimSpace(a))
		if err != nil {
			return nil, nil, fmt.Errorf("roi: range %q: bad lower bound: %v", p, err)
		}
		h, err := strconv.Atoi(strings.TrimSpace(b))
		if err != nil {
			return nil, nil, fmt.Errorf("roi: range %q: bad upper bound: %v", p, err)
		}
		if l < 0 || h <= l {
			return nil, nil, fmt.Errorf("roi: range %q: need 0 <= lo < hi", p)
		}
		lo = append(lo, l)
		hi = append(hi, h)
	}
	return lo, hi, nil
}

// FormatRegion renders lo/hi in ParseRegion's syntax.
func FormatRegion(lo, hi []int) string {
	var b strings.Builder
	for d := range lo {
		if d > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", lo[d], hi[d])
	}
	return b.String()
}
