package roi

import (
	"fmt"

	"github.com/fxrz-go/fxrz/internal/brick"
	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/sz"
	"github.com/fxrz-go/fxrz/internal/zfp"
)

// zfpBlockSide mirrors zfp's block extent; the reader's cache granularity.
const zfpBlockSide = 4

// Reader provides O(1) materialized random access over a compressed stream:
// point queries decode lazily — at most once per block — into an in-memory
// cache, after which At is a map lookup plus index arithmetic and performs
// zero heap allocations (pinned by TestReaderAtZeroAlloc).
//
// For ZFP streams up to 3D the cache granularity is the codec's own 4^d
// block, decoded through the seeking region path, so a cold query costs one
// block, not one field. For SZ streams whose code section is chunked (the
// encoder reset its predictor at every slab boundary) the granularity is one
// slab, decoded through sz.DecompressRegion's seeking path — a cold query
// entropy-decodes and reconstructs only the slab it landed in. Remaining
// streams (legacy whole-stream SZ, the other codecs, brick stores)
// materialize in full on the first query and serve from memory thereafter.
type Reader struct {
	blob         []byte
	inner, index []byte
	name         string
	nd           int
	dims         [grid.MaxDims]int
	isBrick      bool

	blockMode bool
	nb        [3]int
	blocks    map[int][]float32

	slabT int // sz slab mode when > 0: rows per lazily decoded slab
	slabs map[int][]float32

	full *grid.Field
}

// NewReader parses a container (indexed, raw codec blob, or marshaled brick
// store) without decoding any samples.
func NewReader(blob []byte) (*Reader, error) {
	if len(blob) == 0 {
		return nil, fmt.Errorf("roi: empty stream")
	}
	r := &Reader{blob: blob}
	if brick.IsStore(blob) {
		st, err := brick.UnmarshalAuto(ResolveCodec, blob)
		if err != nil {
			return nil, err
		}
		dims := st.Dims()
		r.isBrick = true
		r.nd = len(dims)
		copy(r.dims[:], dims)
		return r, nil
	}
	inner, index := blob, []byte(nil)
	if IsIndexed(blob) {
		var err error
		if inner, index, err = Unwrap(blob); err != nil {
			return nil, err
		}
	}
	if len(inner) == 0 {
		return nil, fmt.Errorf("roi: %w: empty inner stream", compress.ErrCorrupt)
	}
	if _, err := ResolveCodec(inner[0]); err != nil {
		return nil, err
	}
	h, _, err := compress.ParseHeader(inner, inner[0])
	if err != nil {
		return nil, fmt.Errorf("roi: %w", err)
	}
	r.inner, r.index = inner, index
	r.name = h.Name
	r.nd = len(h.Dims)
	copy(r.dims[:], h.Dims)
	if inner[0] == compress.MagicZFP && r.nd <= 3 {
		r.blockMode = true
		for d := 0; d < r.nd; d++ {
			r.nb[d] = (h.Dims[d] + zfpBlockSide - 1) / zfpBlockSide
		}
		r.blocks = make(map[int][]float32)
	} else if inner[0] == compress.MagicSZ {
		if t := sz.SlabRows(inner); t > 0 {
			r.slabT = t
			r.slabs = make(map[int][]float32)
		}
	}
	return r, nil
}

// Name returns the field name recorded in the stream ("" for brick stores,
// which carry their own naming).
func (r *Reader) Name() string { return r.name }

// Dims returns the field geometry.
func (r *Reader) Dims() []int { return append([]int(nil), r.dims[:r.nd]...) }

// At returns the decoded sample at coord, decoding lazily. After the blocks
// covering a region have been touched once, further queries in that region
// allocate nothing.
func (r *Reader) At(coord ...int) (float32, error) {
	if len(coord) != r.nd {
		return 0, fmt.Errorf("roi: coordinate rank %d does not match %d dims", len(coord), r.nd)
	}
	for d, c := range coord {
		if c < 0 || c >= r.dims[d] {
			return 0, fmt.Errorf("roi: coordinate %d out of range for dim %d (extent %d)", c, d, r.dims[d])
		}
	}
	if r.full != nil {
		idx := 0
		for d, c := range coord {
			idx = idx*r.dims[d] + c
		}
		return r.full.Data[idx], nil
	}
	if r.slabT > 0 {
		s := coord[0] / r.slabT
		vals, ok := r.slabs[s]
		if !ok {
			var err error
			if vals, err = r.decodeSlab(s); err != nil {
				return 0, err
			}
			r.slabs[s] = vals
		}
		idx := coord[0] - s*r.slabT
		for d := 1; d < r.nd; d++ {
			idx = idx*r.dims[d] + coord[d]
		}
		return vals[idx], nil
	}
	if !r.blockMode {
		if err := r.materialize(); err != nil {
			return 0, err
		}
		idx := 0
		for d, c := range coord {
			idx = idx*r.dims[d] + c
		}
		return r.full.Data[idx], nil
	}
	k := 0
	for d := 0; d < r.nd; d++ {
		k = k*r.nb[d] + coord[d]/zfpBlockSide
	}
	vals, ok := r.blocks[k]
	if !ok {
		var err error
		if vals, err = r.decodeBlock(coord); err != nil {
			return 0, err
		}
		r.blocks[k] = vals
	}
	idx := 0
	for d := 0; d < r.nd; d++ {
		o := (coord[d] / zfpBlockSide) * zfpBlockSide
		ext := zfpBlockSide
		if o+ext > r.dims[d] {
			ext = r.dims[d] - o
		}
		idx = idx*ext + (coord[d] - o)
	}
	return vals[idx], nil
}

// decodeBlock decodes the single 4^d block containing coord via the seeking
// region path (cold path only; the result is cached).
func (r *Reader) decodeBlock(coord []int) ([]float32, error) {
	lo := make([]int, r.nd)
	hi := make([]int, r.nd)
	for d := 0; d < r.nd; d++ {
		lo[d] = (coord[d] / zfpBlockSide) * zfpBlockSide
		hi[d] = lo[d] + zfpBlockSide
		if hi[d] > r.dims[d] {
			hi[d] = r.dims[d]
		}
	}
	f, err := zfp.DecompressRegion(r.inner, r.index, lo, hi)
	if err != nil {
		return nil, err
	}
	return f.Data, nil
}

// decodeSlab decodes sz slab s — the rows [s·slabT, min((s+1)·slabT, nz)) —
// through the seeking region path: only the entropy chunk backing the slab is
// decoded and only its rows are reconstructed (cold path only; cached).
func (r *Reader) decodeSlab(s int) ([]float32, error) {
	lo := make([]int, r.nd)
	hi := make([]int, r.nd)
	lo[0] = s * r.slabT
	hi[0] = lo[0] + r.slabT
	if hi[0] > r.dims[0] {
		hi[0] = r.dims[0]
	}
	for d := 1; d < r.nd; d++ {
		hi[d] = r.dims[d]
	}
	f, err := sz.DecompressRegion(r.inner, r.index, lo, hi)
	if err != nil {
		return nil, err
	}
	return f.Data, nil
}

// materialize runs the one-time full decode backing non-block streams.
func (r *Reader) materialize() error {
	if r.isBrick {
		st, err := brick.UnmarshalAuto(ResolveCodec, r.blob)
		if err != nil {
			return err
		}
		f, err := st.ReadAll()
		if err != nil {
			return err
		}
		r.full = f
		return nil
	}
	c, err := ResolveCodec(r.inner[0])
	if err != nil {
		return err
	}
	f, err := c.Decompress(r.inner)
	if err != nil {
		return err
	}
	r.full = f
	return nil
}
