package roi

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fxrz-go/fxrz/internal/sz"
)

// TestReaderSZSlabMode exercises the reader's per-slab lazy path: a chunked
// sz stream (48×64×64 → 16-row slabs) must serve point queries bit-identical
// to the full decode, decoding one slab per cold query, for both indexed
// containers and raw blobs.
func TestReaderSZSlabMode(t *testing.T) {
	f := testField(t, 48, 64, 64)
	blob, err := sz.New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if sz.SlabRows(blob) == 0 {
		t.Fatal("48×64×64 sz blob is not chunked; slab mode untested")
	}
	indexed, err := Build(blob)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sz.New().Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		blob []byte
	}{
		{"indexed", indexed},
		{"raw", blob},
	} {
		r, err := NewReader(tc.blob)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		rng := rand.New(rand.NewSource(29))
		for q := 0; q < 300; q++ {
			z, y, x := rng.Intn(48), rng.Intn(64), rng.Intn(64)
			got, err := r.At(z, y, x)
			if err != nil {
				t.Fatalf("%s: At(%d,%d,%d): %v", tc.name, z, y, x, err)
			}
			if want := full.At(z, y, x); math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("%s: At(%d,%d,%d) = %v, want %v", tc.name, z, y, x, got, want)
			}
		}
	}
}

// TestReaderSZSlabZeroAlloc extends the warm-path guarantee to slab mode:
// once the slab under a query is cached, At is a map lookup plus index
// arithmetic.
func TestReaderSZSlabZeroAlloc(t *testing.T) {
	f := testField(t, 48, 64, 64)
	blob, err := sz.New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := Build(blob)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(indexed)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the slab holding rows 0..15.
	if _, err := r.At(3, 10, 10); err != nil {
		t.Fatal(err)
	}
	var sink float32
	allocs := testing.AllocsPerRun(200, func() {
		for y := 0; y < 8; y++ {
			v, err := r.At(3, y, 17)
			if err != nil {
				t.Fatal(err)
			}
			sink += v
		}
	})
	if allocs != 0 {
		t.Fatalf("slab-mode Reader.At allocates %v per warm run, want 0", allocs)
	}
	_ = sink
}
