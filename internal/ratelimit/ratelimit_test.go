package ratelimit

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for exact refill math.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestLimiter(cfg Config) (*Limiter, *fakeClock) {
	l := New(cfg)
	clk := newFakeClock()
	l.SetClock(clk.now)
	return l, clk
}

func TestBurstThenRefill(t *testing.T) {
	l, clk := newTestLimiter(Config{Rate: 2, Burst: 2})
	for k := 0; k < 2; k++ {
		if ok, _ := l.Allow("c"); !ok {
			t.Fatalf("burst request %d refused", k)
		}
	}
	ok, retry := l.Allow("c")
	if ok {
		t.Fatal("third back-to-back request allowed past the burst")
	}
	// Empty bucket at 2 tokens/s: a full token is 500ms away.
	if retry != 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 500ms", retry)
	}
	clk.advance(499 * time.Millisecond)
	if ok, _ := l.Allow("c"); ok {
		t.Fatal("allowed 1ms before the refill lands")
	}
	clk.advance(2 * time.Millisecond)
	if ok, _ := l.Allow("c"); !ok {
		t.Fatal("refused after the refill landed")
	}
}

// TestRetryAfterIsRefillDerived pins the satellite requirement: the wait is
// computed from the actual bucket state, not a constant.
func TestRetryAfterIsRefillDerived(t *testing.T) {
	l, clk := newTestLimiter(Config{Rate: 0.25, Burst: 1})
	if ok, _ := l.Allow("c"); !ok {
		t.Fatal("first request refused")
	}
	if ok, retry := l.Allow("c"); ok || retry != 4*time.Second {
		t.Fatalf("empty bucket at 0.25/s: ok=%v retry=%v, want refused after 4s", ok, retry)
	}
	// Half a token refilled: only half the wait remains.
	clk.advance(2 * time.Second)
	if ok, retry := l.Allow("c"); ok || retry != 2*time.Second {
		t.Fatalf("half-full bucket: ok=%v retry=%v, want refused after 2s", ok, retry)
	}
}

func TestBurstCapAfterLongIdle(t *testing.T) {
	l, clk := newTestLimiter(Config{Rate: 10, Burst: 3})
	for k := 0; k < 3; k++ {
		l.Allow("c")
	}
	clk.advance(time.Hour)
	allowed := 0
	for {
		ok, _ := l.Allow("c")
		if !ok {
			break
		}
		allowed++
	}
	if allowed != 3 {
		t.Fatalf("after a long idle, %d requests allowed, want burst of 3", allowed)
	}
}

func TestClientsAreIndependent(t *testing.T) {
	l, _ := newTestLimiter(Config{Rate: 1, Burst: 1})
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("a refused")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("a's second request allowed")
	}
	// A different client is untouched by a's exhausted bucket.
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("b refused because of a's traffic")
	}
}

func TestEvictionBoundsMemory(t *testing.T) {
	l, _ := newTestLimiter(Config{Rate: 1, Burst: 1, MaxClients: 2})
	l.Allow("a") // a's bucket now empty
	l.Allow("b")
	l.Allow("c") // evicts a (least recently seen)
	if n := l.Clients(); n != 2 {
		t.Fatalf("resident clients = %d, want 2", n)
	}
	// a returns with a fresh bucket — the documented eviction trade-off.
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("evicted client did not restart with a full bucket")
	}
	// b was refreshed more recently than c's insert?  No: order is a(front),
	// c, b — touching a evicted b.  Spend c's remaining state to check LRU
	// order held: c's bucket is empty, so it must still be resident.
	if ok, _ := l.Allow("c"); ok {
		t.Fatal("c's bucket state was lost although b was the LRU entry")
	}
}

func TestDisabledLimiter(t *testing.T) {
	l, _ := newTestLimiter(Config{Rate: 0})
	if l.Enabled() {
		t.Fatal("Rate 0 reported enabled")
	}
	for k := 0; k < 100; k++ {
		if ok, retry := l.Allow("c"); !ok || retry != 0 {
			t.Fatal("disabled limiter refused a request")
		}
	}
	if n := l.Clients(); n != 0 {
		t.Fatalf("disabled limiter allocated %d buckets", n)
	}
}

func TestBurstDefault(t *testing.T) {
	l, _ := newTestLimiter(Config{Rate: 2.5})
	// Default burst is ceil(2.5) = 3.
	allowed := 0
	for {
		ok, _ := l.Allow("c")
		if !ok {
			break
		}
		allowed++
	}
	if allowed != 3 {
		t.Fatalf("default burst admitted %d, want ceil(rate) = 3", allowed)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Nanosecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{4 * time.Second, 4},
	}
	for _, tc := range cases {
		if got := RetryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestConcurrentClients exercises the mutex under -race: many goroutines,
// shared and private IDs, no torn state afterwards.
func TestConcurrentClients(t *testing.T) {
	l, clk := newTestLimiter(Config{Rate: 1000, Burst: 5, MaxClients: 8})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				l.Allow(fmt.Sprintf("client-%d", g%4))
				if k%50 == 0 {
					clk.advance(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := l.Clients(); n > 8 {
		t.Fatalf("resident clients = %d exceeds MaxClients", n)
	}
}

// TestAllowNChargesPerItem pins the batch-endpoint contract: an N-item batch
// draws N tokens, so it cannot slip past the limiter as one cheap request.
func TestAllowNChargesPerItem(t *testing.T) {
	l, clk := newTestLimiter(Config{Rate: 2, Burst: 8})
	if ok, _ := l.AllowN("c", 6); !ok {
		t.Fatal("6-token batch refused against a full 8-deep bucket")
	}
	// 2 tokens left: a 3-item batch must wait, all-or-nothing.
	ok, retry := l.AllowN("c", 3)
	if ok {
		t.Fatal("3-token batch allowed with only 2 tokens left")
	}
	// Deficit is 1 token at 2/s: 500ms.
	if retry != 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 500ms", retry)
	}
	// The refusal must not have spent the remaining tokens.
	if ok, _ := l.AllowN("c", 2); !ok {
		t.Fatal("refused batch consumed tokens it was not granted")
	}
	clk.advance(time.Second)
	if ok, _ := l.AllowN("c", 2); !ok {
		t.Fatal("refill did not restore batch budget")
	}
}

// TestAllowNBeyondBurst: a batch deeper than the bucket waits for a full
// bucket — the closest state the client can reach — instead of reporting an
// unreachable wait.
func TestAllowNBeyondBurst(t *testing.T) {
	l, _ := newTestLimiter(Config{Rate: 1, Burst: 4})
	ok, retry := l.AllowN("c", 10)
	if ok {
		t.Fatal("10-token batch allowed against a 4-deep bucket")
	}
	// Bucket is full (4 tokens); target clamps to the 4-deep burst, so the
	// deficit is zero and the wait is zero — the caller should split the
	// batch rather than retry it whole.
	if retry != 0 {
		t.Fatalf("retryAfter = %v, want 0 for an already-full bucket", retry)
	}
	// A split into burst-sized pieces goes through.
	if ok, _ := l.AllowN("c", 4); !ok {
		t.Fatal("burst-sized batch refused against a full bucket")
	}
}

func TestAllowNDegeneratesToAllow(t *testing.T) {
	a, clkA := newTestLimiter(Config{Rate: 3, Burst: 3})
	b, clkB := newTestLimiter(Config{Rate: 3, Burst: 3})
	for step := 0; step < 12; step++ {
		okA, retryA := a.Allow("c")
		okB, retryB := b.AllowN("c", 1)
		if okA != okB || retryA != retryB {
			t.Fatalf("step %d: Allow=(%v,%v) AllowN(1)=(%v,%v)", step, okA, retryA, okB, retryB)
		}
		clkA.advance(100 * time.Millisecond)
		clkB.advance(100 * time.Millisecond)
	}
}

func TestAllowNDisabledAndNonPositive(t *testing.T) {
	l, _ := newTestLimiter(Config{Rate: 1, Burst: 1})
	if ok, _ := l.AllowN("c", 0); !ok {
		t.Error("n=0 refused; a free decision must pass")
	}
	disabled := New(Config{Rate: 0})
	if ok, _ := disabled.AllowN("c", 1000); !ok {
		t.Error("disabled limiter refused a batch")
	}
}
