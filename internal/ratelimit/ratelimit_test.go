package ratelimit

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for exact refill math.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestLimiter(cfg Config) (*Limiter, *fakeClock) {
	l := New(cfg)
	clk := newFakeClock()
	l.SetClock(clk.now)
	return l, clk
}

func TestBurstThenRefill(t *testing.T) {
	l, clk := newTestLimiter(Config{Rate: 2, Burst: 2})
	for k := 0; k < 2; k++ {
		if ok, _ := l.Allow("c"); !ok {
			t.Fatalf("burst request %d refused", k)
		}
	}
	ok, retry := l.Allow("c")
	if ok {
		t.Fatal("third back-to-back request allowed past the burst")
	}
	// Empty bucket at 2 tokens/s: a full token is 500ms away.
	if retry != 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 500ms", retry)
	}
	clk.advance(499 * time.Millisecond)
	if ok, _ := l.Allow("c"); ok {
		t.Fatal("allowed 1ms before the refill lands")
	}
	clk.advance(2 * time.Millisecond)
	if ok, _ := l.Allow("c"); !ok {
		t.Fatal("refused after the refill landed")
	}
}

// TestRetryAfterIsRefillDerived pins the satellite requirement: the wait is
// computed from the actual bucket state, not a constant.
func TestRetryAfterIsRefillDerived(t *testing.T) {
	l, clk := newTestLimiter(Config{Rate: 0.25, Burst: 1})
	if ok, _ := l.Allow("c"); !ok {
		t.Fatal("first request refused")
	}
	if ok, retry := l.Allow("c"); ok || retry != 4*time.Second {
		t.Fatalf("empty bucket at 0.25/s: ok=%v retry=%v, want refused after 4s", ok, retry)
	}
	// Half a token refilled: only half the wait remains.
	clk.advance(2 * time.Second)
	if ok, retry := l.Allow("c"); ok || retry != 2*time.Second {
		t.Fatalf("half-full bucket: ok=%v retry=%v, want refused after 2s", ok, retry)
	}
}

func TestBurstCapAfterLongIdle(t *testing.T) {
	l, clk := newTestLimiter(Config{Rate: 10, Burst: 3})
	for k := 0; k < 3; k++ {
		l.Allow("c")
	}
	clk.advance(time.Hour)
	allowed := 0
	for {
		ok, _ := l.Allow("c")
		if !ok {
			break
		}
		allowed++
	}
	if allowed != 3 {
		t.Fatalf("after a long idle, %d requests allowed, want burst of 3", allowed)
	}
}

func TestClientsAreIndependent(t *testing.T) {
	l, _ := newTestLimiter(Config{Rate: 1, Burst: 1})
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("a refused")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("a's second request allowed")
	}
	// A different client is untouched by a's exhausted bucket.
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("b refused because of a's traffic")
	}
}

func TestEvictionBoundsMemory(t *testing.T) {
	l, _ := newTestLimiter(Config{Rate: 1, Burst: 1, MaxClients: 2})
	l.Allow("a") // a's bucket now empty
	l.Allow("b")
	l.Allow("c") // evicts a (least recently seen)
	if n := l.Clients(); n != 2 {
		t.Fatalf("resident clients = %d, want 2", n)
	}
	// a returns with a fresh bucket — the documented eviction trade-off.
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("evicted client did not restart with a full bucket")
	}
	// b was refreshed more recently than c's insert?  No: order is a(front),
	// c, b — touching a evicted b.  Spend c's remaining state to check LRU
	// order held: c's bucket is empty, so it must still be resident.
	if ok, _ := l.Allow("c"); ok {
		t.Fatal("c's bucket state was lost although b was the LRU entry")
	}
}

func TestDisabledLimiter(t *testing.T) {
	l, _ := newTestLimiter(Config{Rate: 0})
	if l.Enabled() {
		t.Fatal("Rate 0 reported enabled")
	}
	for k := 0; k < 100; k++ {
		if ok, retry := l.Allow("c"); !ok || retry != 0 {
			t.Fatal("disabled limiter refused a request")
		}
	}
	if n := l.Clients(); n != 0 {
		t.Fatalf("disabled limiter allocated %d buckets", n)
	}
}

func TestBurstDefault(t *testing.T) {
	l, _ := newTestLimiter(Config{Rate: 2.5})
	// Default burst is ceil(2.5) = 3.
	allowed := 0
	for {
		ok, _ := l.Allow("c")
		if !ok {
			break
		}
		allowed++
	}
	if allowed != 3 {
		t.Fatalf("default burst admitted %d, want ceil(rate) = 3", allowed)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Nanosecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{4 * time.Second, 4},
	}
	for _, tc := range cases {
		if got := RetryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestConcurrentClients exercises the mutex under -race: many goroutines,
// shared and private IDs, no torn state afterwards.
func TestConcurrentClients(t *testing.T) {
	l, clk := newTestLimiter(Config{Rate: 1000, Burst: 5, MaxClients: 8})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				l.Allow(fmt.Sprintf("client-%d", g%4))
				if k%50 == 0 {
					clk.advance(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := l.Clients(); n > 8 {
		t.Fatalf("resident clients = %d exceeds MaxClients", n)
	}
}
