// Package ratelimit is a per-client token-bucket rate limiter for the
// serving tier. Where internal/qos protects the server's capacity across
// request *classes*, this package protects it across *clients*: one greedy
// caller cannot monopolize the admission slots that QoS would otherwise share
// fairly among everyone in its class.
//
// Each client ID owns an independent bucket of Burst tokens refilled
// continuously at Rate tokens per second. A request costs one token; a
// client with an empty bucket is refused, and the refusal carries the exact
// time until the bucket next holds a full token — the serving layer turns
// that into an honest Retry-After header instead of a generic "try later".
//
// The bucket table is bounded: at most MaxClients buckets are resident, and
// the least-recently-seen client is evicted to make room. An evicted client
// that returns starts with a full bucket again — the limiter trades perfect
// memory for bounded memory, which is the right trade for a shedding tier
// (an attacker cycling IDs is better handled by qos capacity limits anyway).
package ratelimit

import (
	"container/list"
	"math"
	"sync"
	"time"
)

// Config sizes a Limiter.
type Config struct {
	// Rate is each client's sustained request budget in requests/second.
	// Rate <= 0 disables the limiter: every Allow succeeds.
	Rate float64
	// Burst is the bucket depth — how many requests a client may issue
	// back-to-back after an idle period. Default: ceil(Rate), at least 1.
	Burst int
	// MaxClients bounds the resident bucket table (default 4096); the
	// least-recently-seen client is evicted when it overflows.
	MaxClients int
}

func (c Config) withDefaults() Config {
	if c.Burst <= 0 {
		c.Burst = int(math.Ceil(c.Rate))
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 4096
	}
	return c
}

// bucket is one client's token state. Tokens are fractional: refill is
// continuous, not stepped, so Retry-After math is exact.
type bucket struct {
	id     string
	tokens float64
	last   time.Time
	elem   *list.Element
}

// Limiter applies a Config across client IDs. Create with New; safe for
// concurrent use.
type Limiter struct {
	cfg Config
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
	lru     *list.List // front = most recently seen
}

// New builds a limiter from cfg (see Config for defaults and the Rate <= 0
// disabled state).
func New(cfg Config) *Limiter {
	return &Limiter{
		cfg:     cfg.withDefaults(),
		now:     time.Now,
		buckets: make(map[string]*bucket),
		lru:     list.New(),
	}
}

// SetClock replaces the limiter's time source. Tests use this to make refill
// and Retry-After math exact; production code never calls it.
func (l *Limiter) SetClock(now func() time.Time) { l.now = now }

// Enabled reports whether the limiter enforces anything.
func (l *Limiter) Enabled() bool { return l.cfg.Rate > 0 }

// Allow spends one token from id's bucket. When the bucket is empty it
// returns ok=false and the exact duration until a full token will have
// refilled — the honest Retry-After for this client.
func (l *Limiter) Allow(id string) (ok bool, retryAfter time.Duration) {
	return l.AllowN(id, 1)
}

// AllowN spends n tokens from id's bucket in one all-or-nothing decision —
// the batch endpoints' charge, one token per item, so a 64-item batch draws
// the same budget as 64 single requests instead of slipping past the limiter
// as one. A refusal carries the exact duration until n tokens will have
// refilled; when n exceeds the bucket's burst depth, that wait is computed
// against the depth the bucket can actually reach, so the Retry-After stays
// meaningful (the caller is expected to split the batch or be shed again).
func (l *Limiter) AllowN(id string, n int) (ok bool, retryAfter time.Duration) {
	if !l.Enabled() || n <= 0 {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[id]
	if b == nil {
		b = &bucket{id: id, tokens: float64(l.cfg.Burst), last: now}
		l.buckets[id] = b
		b.elem = l.lru.PushFront(b)
		if len(l.buckets) > l.cfg.MaxClients {
			oldest := l.lru.Back().Value.(*bucket)
			l.lru.Remove(oldest.elem)
			delete(l.buckets, oldest.id)
		}
	} else {
		l.lru.MoveToFront(b.elem)
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(float64(l.cfg.Burst), b.tokens+dt*l.cfg.Rate)
		}
		b.last = now
	}
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	// The bucket refills no deeper than Burst, so a demand beyond it waits
	// for a full bucket — the closest the client can ever get.
	target := math.Min(need, float64(l.cfg.Burst))
	deficit := target - b.tokens
	return false, time.Duration(deficit / l.cfg.Rate * float64(time.Second))
}

// Clients returns the resident bucket count (for tests and gauges).
func (l *Limiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// RetryAfterSeconds renders a refill wait as an HTTP Retry-After value:
// whole seconds, rounded up, at least 1 (a zero Retry-After would invite an
// immediate retry against a bucket that is still empty).
func RetryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
