# Verification tiers. tier-1 (verify) is the PR gate; tier-2 (verify-race)
# additionally vets the code and runs the full suite under the race detector,
# which must stay clean now that training fans out across a worker pool.

.PHONY: verify verify-race bench-train

verify:
	go build ./... && go test ./...

verify-race:
	go vet ./... && go test -race ./...

# Re-record the BENCH_train.json trajectory (run on a multi-core machine).
bench-train:
	go test -run xxx -bench BenchmarkTrainParallel -benchtime 3x .
