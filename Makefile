# Verification tiers. tier-1 (verify) is the PR gate; tier-2 (verify-race)
# additionally vets the code and runs the full suite under the race detector,
# which must stay clean now that training fans out across a worker pool.
# The CI workflow (.github/workflows/ci.yml) runs lint, verify, verify-race,
# cover and the bench-smoke/benchguard pair on every push and pull request.

.PHONY: verify verify-race lint cover bench-train bench-kernels bench-compress bench-serve bench-roi bench-entropy bench-load bench-shard bench-smoke benchguard fuzz-smoke

verify:
	go build ./... && go test ./...

verify-race:
	go vet ./... && go test -race ./...

# Static gate: vet plus gofmt cleanliness (gofmt -l must print nothing).
lint:
	go vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

# Coverage profile for the whole module, plus a hard floor of 85% on
# internal/obs — the observability layer is what CI gates on, so its own
# tests must not rot.
cover:
	go test -coverprofile=coverage.out ./...
	@go tool cover -func=coverage.out | tail -n 1
	go test -coverprofile=coverage.obs.out ./internal/obs
	@pct="$$(go tool cover -func=coverage.obs.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }')"; \
	echo "internal/obs coverage: $$pct% (floor: 85%)"; \
	awk -v p="$$pct" 'BEGIN { exit !(p+0 >= 85) }'

# Re-record the BENCH_train.json trajectory (run on a multi-core machine).
bench-train:
	go test -run xxx -bench BenchmarkTrainParallel -benchtime 3x .

# Run the kernel fast-path benchmarks and print old-vs-new deltas, gated
# against the recorded BENCH_kernels.json: fails if any kernel's measured
# speedup regressed more than 10% from the recorded one. Run this (and
# re-record the JSON) after touching any kernel.
bench-kernels:
	@out="$$(go test -run '^$$' -bench BenchmarkKernel -benchtime 1s \
		./internal/sz/ ./internal/zfp/ ./internal/entropy/ ./internal/core/)" \
		|| { echo "$$out"; exit 1; }; \
	echo "$$out" | go run ./cmd/benchguard -deltas -baseline BENCH_kernels.json

# Run the serial-vs-parallel codec benchmarks and print w1-vs-w4 deltas,
# gated against the recorded BENCH_compress.json. The 1.5x pack floor only
# gates on machines with >= 4 cores (parallel speedups, unlike the kernel
# before/after ratios, are wall-clock and core-bound); elsewhere the table is
# informational and only a missing bench variant fails.
bench-compress:
	@out="$$(go test -run '^$$' -bench BenchmarkCompress -benchtime 1x .)" \
		|| { echo "$$out"; exit 1; }; \
	echo "$$out" | go run ./cmd/benchguard -deltas -baseline BENCH_compress.json

# Run the serving-layer benchmarks and gate the http-vs-direct overhead
# against the recorded BENCH_serve.json: each endpoint's request must stay
# within its absolute overhead cap and within 10% of the recorded ratio.
# Overheads are within-run ratios, so the gate holds on any machine. Run
# this (and re-record the JSON) after touching internal/serve.
bench-serve:
	@out="$$(go test -run '^$$' -bench BenchmarkServe -benchtime 300ms ./internal/serve/)" \
		|| { echo "$$out"; exit 1; }; \
	echo "$$out" | go run ./cmd/benchguard -deltas -baseline BENCH_serve.json

# Run the region-decode benchmarks and gate the full-vs-eighth speedup
# against the floors recorded in BENCH_roi.json: an eighth-volume decode out
# of an indexed zfp stream must stay >= 4x faster than a full decode.
# Speedups are within-run ratios, so the gate holds on any machine. Run this
# (and re-record the JSON) after touching the region decode paths
# (internal/roi, internal/zfp/region.go, internal/sz/region.go).
bench-roi:
	@out="$$(go test -run '^$$' -bench BenchmarkRegionDecode -benchtime 1s .)" \
		|| { echo "$$out"; exit 1; }; \
	echo "$$out" | go run ./cmd/benchguard -deltas -baseline BENCH_roi.json

# Run the chunked-entropy decode benchmark and gate the serial-vs-chunked
# deltas against the recorded BENCH_entropy.json: the w4-vs-serial 2x floor
# only gates on machines with >= 4 cores (wall-clock, core-bound); the w1
# overhead cap and the <= 1% chunk-table size budget are validated against
# the recorded file on any machine. Run this (and re-record the JSON) after
# touching internal/entropy.
bench-entropy:
	@out="$$(go test -run '^$$' -bench BenchmarkChunkedDecode -benchtime 1s ./internal/entropy/)" \
		|| { echo "$$out"; exit 1; }; \
	echo "$$out" | go run ./cmd/benchguard -deltas -baseline BENCH_entropy.json

# One-iteration benchmark pass: proves the benchmarks still run, without
# trusting the timings of a shared CI box (the timing gate is bench-kernels,
# run on a quiet recording machine).
bench-smoke:
	go test -run '^$$' -bench BenchmarkTrainParallel -benchtime 1x .
	go test -run '^$$' -bench BenchmarkKernel -benchtime 1x \
		./internal/sz/ ./internal/zfp/ ./internal/entropy/ ./internal/core/
	go test -run '^$$' -bench BenchmarkServe -benchtime 1x ./internal/serve/
	go test -run '^$$' -bench BenchmarkRegionDecode -benchtime 1x .
	go test -run '^$$' -bench BenchmarkChunkedDecode -benchtime 1x ./internal/entropy/

# Re-record the BENCH_load.json mixed-load baseline and gate it: fxrzload
# trains a small model, serves it in-process (fxrzd's real handler), drives
# the 90:5:5 estimate/unpack/pack mix for LOADTIME, and writes the summary
# with the p99 and shed caps baked in; benchguard then validates the file
# (counts consistent, percentiles monotone, p99s under their caps, shed rate
# under its cap). Run this (and commit the JSON) after touching the serving
# or admission paths. Absolute latencies are machine-bound — re-record rather
# than compare across boxes.
LOADTIME ?= 10s
bench-load:
	go run ./cmd/fxrzload -selfserve -duration $(LOADTIME) -concurrency 8 \
		-max-inflight 8 -seed 1 -shed-cap 0.25 \
		-p99-caps "estimate=40,unpack=60,pack=80" \
		-note "recorded via 'make bench-load' (fxrzload -selfserve) on the PR container" \
		-out BENCH_load.json
	go run ./cmd/benchguard BENCH_load.json

# Re-record the BENCH_shard.json scatter-gather comparison and gate it:
# fxrzload drives the same batch workload against one in-process instance and
# then a 2-instance shard ring (same trained model, items carrying distinct
# shard keys so batches actually split), records the amortized per-item
# p50/p99 for both, and writes the sharded/single p50 ratio with the overhead
# cap baked in; benchguard then validates the file. The ratio is a within-run
# comparison, so it gates on any machine. Run this (and commit the JSON)
# after touching internal/shard or the batch serving paths.
SHARDTIME ?= 5s
bench-shard:
	go run ./cmd/fxrzload -selfserve -shards 2 -batch 8 \
		-duration $(SHARDTIME) -concurrency 8 -max-inflight 8 -seed 1 \
		-mix 80:10:10 -overhead-cap 3 \
		-note "recorded via 'make bench-shard' (fxrzload -shard-out) on the PR container" \
		-shard-out BENCH_shard.json
	go run ./cmd/benchguard BENCH_shard.json

# Short fuzzing burst over every Fuzz* target, starting from the committed
# seed corpora (regenerate seeds with `go run ./cmd/genfixtures`). Each
# target runs for FUZZTIME (default 20s); a crasher fails the run and leaves
# its reproducer under testdata/fuzz/ for triage.
FUZZTIME ?= 20s
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzDecompress$$' -fuzztime $(FUZZTIME) ./internal/sz/
	go test -run '^$$' -fuzz '^FuzzDecompress$$' -fuzztime $(FUZZTIME) ./internal/zfp/
	go test -run '^$$' -fuzz '^FuzzDecompress$$' -fuzztime $(FUZZTIME) ./internal/fpzip/
	go test -run '^$$' -fuzz '^FuzzDecompress$$' -fuzztime $(FUZZTIME) ./internal/mgard/
	go test -run '^$$' -fuzz '^FuzzLZDecompress$$' -fuzztime $(FUZZTIME) ./internal/entropy/
	go test -run '^$$' -fuzz '^FuzzHuffmanDecode$$' -fuzztime $(FUZZTIME) ./internal/entropy/
	go test -run '^$$' -fuzz '^FuzzChunkedEntropy$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 5s ./internal/entropy/
	go test -run '^$$' -fuzz '^FuzzBatchContainer$$' -fuzztime $(FUZZTIME) ./internal/batch/
	go test -run '^$$' -fuzz '^FuzzDecompress$$' -fuzztime $(FUZZTIME) .

# Validate the recorded baseline files stay machine-readable and keep their
# speedup floors.
benchguard:
	go run ./cmd/benchguard BENCH_train.json BENCH_kernels.json BENCH_compress.json BENCH_serve.json BENCH_roi.json BENCH_entropy.json BENCH_load.json BENCH_shard.json
